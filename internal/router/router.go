package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/promtext"
	"repro/internal/server"
)

// node is the router's view of one tossd instance: its base URL plus health
// state (from the /readyz prober) and cumulative upstream counters.
type node struct {
	url string

	healthy  atomic.Bool
	probed   atomic.Bool // at least one probe has completed
	probeMu  sync.Mutex  // guards probeErr
	probeErr string

	requests atomic.Uint64 // upstream requests issued (first attempts and retries)
	errors   atomic.Uint64 // upstream attempts that failed (connect error, 429, 5xx, broken stream)
	retries  atomic.Uint64 // retry attempts (subset of requests)
}

func (n *node) setProbe(healthy bool, errMsg string) {
	n.healthy.Store(healthy)
	n.probed.Store(true)
	n.probeMu.Lock()
	n.probeErr = errMsg
	n.probeMu.Unlock()
}

func (n *node) probeError() string {
	n.probeMu.Lock()
	defer n.probeMu.Unlock()
	return n.probeErr
}

// Router scatters client requests over a static tossd cluster and gathers
// the answers back into the single-node wire format. It is stateless apart
// from advisory caches (node summaries, health) and the per-collection
// sequence counter it advances while assigning ingest positions — that
// counter is re-seeded from the nodes' own next_seq on every batch, so a
// router restart (or a second router) continues the same sequence space.
type Router struct {
	cfg     Config
	client  *http.Client
	nodes   []*node
	ring    *ring
	limiter *server.Limiter
	reg     *promtext.Registry
	start   time.Time
	mux     http.Handler

	draining atomic.Bool

	// healthyCount is the healthy-node count of the last completed probe
	// round; -1 until a round completes (readyz treats unknown as ready).
	healthyCount atomic.Int64

	sumMu sync.Mutex
	sums  map[string]*summaryEntry // node URL -> cached digest

	seqMu   sync.Mutex
	nextSeq map[string]uint64 // collection -> next global sequence to assign

	stopProbe chan struct{}
	probeDone chan struct{}

	mRequests     *promtext.Counter
	mErrors       *promtext.Counter
	mRejected     *promtext.Counter
	mPanics       *promtext.Counter
	mPartials     *promtext.Counter
	mStreamed     *promtext.Counter
	mProxied      *promtext.Counter
	mIngested     *promtext.Counter
	mIngestErrors *promtext.Counter
	hLatency      *promtext.Histogram
	hFanout       *promtext.Histogram
	hFirstResult  *promtext.Histogram
}

// New builds a router over cfg.Nodes. The prober (if enabled) starts
// immediately; call Close to stop it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("router: at least one node is required")
	}
	cfg = cfg.withDefaults()
	urls := make([]string, 0, len(cfg.Nodes))
	seen := map[string]bool{}
	for _, raw := range cfg.Nodes {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			return nil, fmt.Errorf("router: empty node URL")
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			u = "http://" + u
		}
		if seen[u] {
			return nil, fmt.Errorf("router: duplicate node %s", u)
		}
		seen[u] = true
		urls = append(urls, u)
	}
	rt := &Router{
		cfg:       cfg,
		client:    cfg.Client,
		ring:      newRing(urls),
		limiter:   server.NewLimiter(cfg.MaxInFlight, cfg.MaxQueue),
		reg:       promtext.NewRegistry(),
		start:     time.Now(),
		sums:      map[string]*summaryEntry{},
		nextSeq:   map[string]uint64{},
		stopProbe: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	rt.healthyCount.Store(-1)
	for _, u := range urls {
		rt.nodes = append(rt.nodes, &node{url: u})
	}
	rt.registerMetrics()

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", rt.handleQuery)
	mux.HandleFunc("/query", rt.handleQuery) // same alias tossd keeps
	mux.HandleFunc("/v1/docs", rt.handleDocs)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/readyz", rt.handleReadyz)
	mux.HandleFunc("/statz", rt.handleStatz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux = rt.withRecovery(rt.withMetrics(mux))

	if cfg.ProbeInterval > 0 {
		go rt.probeLoop()
	} else {
		close(rt.probeDone)
	}
	return rt, nil
}

// Handler returns the router's HTTP handler (recovery and metrics middleware
// included), ready for http.Server or httptest.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Limiter exposes the admission controller (observability and tests).
func (rt *Router) Limiter() *server.Limiter { return rt.limiter }

// Nodes returns the configured node URLs in ring order (observability).
func (rt *Router) Nodes() []string {
	out := make([]string, len(rt.nodes))
	for i, n := range rt.nodes {
		out[i] = n.url
	}
	return out
}

// StartDraining flips /readyz to 503 while requests keep executing, so
// balancers stop sending new work during the drain window. Idempotent.
func (rt *Router) StartDraining() { rt.draining.Store(true) }

// Close stops the background prober (idempotent is not required: call once).
func (rt *Router) Close() {
	close(rt.stopProbe)
	<-rt.probeDone
}

func (rt *Router) registerMetrics() {
	r := rt.reg
	rt.mRequests = r.NewCounter("toss_router_requests_total", "client requests served by the router")
	rt.mErrors = r.NewCounter("toss_router_request_errors_total", "client requests answered with a 5xx status")
	rt.mRejected = r.NewCounter("toss_router_rejected_total", "requests rejected with 429 by admission control")
	rt.mPanics = r.NewCounter("toss_router_panics_total", "handler panics recovered")
	rt.mPartials = r.NewCounter("toss_router_partial_results_total", "routed requests answered with partial results (some nodes unreachable)")
	rt.mStreamed = r.NewCounter("toss_router_streamed_queries_total", "routed queries answered as NDJSON streams")
	rt.mProxied = r.NewCounter("toss_router_proxied_requests_total", "requests proxied verbatim to a single node (joins, algebra, analyze, xml)")
	rt.mIngested = r.NewCounter("toss_router_ingested_docs_total", "documents scattered to nodes via POST /v1/docs")
	rt.mIngestErrors = r.NewCounter("toss_router_ingest_errors_total", "ingest lines rejected (bad lines and lines lost to node failures)")
	rt.hLatency = r.NewHistogram("toss_router_request_seconds", "client request latency in seconds", nil)
	rt.hFanout = r.NewHistogram("toss_router_fanout_seconds", "seconds from scatter start to gather completion for routed queries", nil)
	rt.hFirstResult = r.NewHistogram("toss_router_first_result_seconds", "seconds from request arrival to the first merged answer", nil)
	r.GaugeFunc("toss_router_in_flight", "routed requests currently executing", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(rt.limiter.InFlight())}}
	})
	r.GaugeFunc("toss_router_queue_depth", "requests waiting for an execution slot", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(rt.limiter.Queued())}}
	})
	r.GaugeFunc("toss_router_nodes_configured", "tossd nodes in the static topology", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(len(rt.nodes))}}
	})
	r.GaugeFunc("toss_router_uptime_seconds", "seconds since router start", func() []promtext.Sample {
		return []promtext.Sample{{Value: time.Since(rt.start).Seconds()}}
	})
	r.CounterFunc("toss_router_node_requests_total", "upstream requests issued per node (retries included)", rt.nodeSamples(func(n *node) float64 {
		return float64(n.requests.Load())
	}))
	r.CounterFunc("toss_router_node_errors_total", "upstream attempts that failed per node", rt.nodeSamples(func(n *node) float64 {
		return float64(n.errors.Load())
	}))
	r.CounterFunc("toss_router_node_retries_total", "upstream retries per node", rt.nodeSamples(func(n *node) float64 {
		return float64(n.retries.Load())
	}))
	r.GaugeFunc("toss_router_node_healthy", "1 when the node's last /readyz probe succeeded (absent until first probe)", func() []promtext.Sample {
		var out []promtext.Sample
		for _, n := range rt.nodes {
			if !n.probed.Load() {
				continue
			}
			v := 0.0
			if n.healthy.Load() {
				v = 1.0
			}
			out = append(out, promtext.Sample{Labels: map[string]string{"node": n.url}, Value: v})
		}
		return out
	})
}

func (rt *Router) nodeSamples(pick func(*node) float64) func() []promtext.Sample {
	return func() []promtext.Sample {
		out := make([]promtext.Sample, 0, len(rt.nodes))
		for _, n := range rt.nodes {
			out = append(out, promtext.Sample{
				Labels: map[string]string{"node": n.url},
				Value:  pick(n),
			})
		}
		return out
	}
}

// statusRecorder mirrors internal/server's: it captures the written status
// for the metrics middleware and forwards Flush so NDJSON lines keep
// streaming through it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (rt *Router) withMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		rt.mRequests.Inc()
		rt.hLatency.Observe(elapsed.Seconds())
		if rec.status >= 500 {
			rt.mErrors.Inc()
		}
		if rt.cfg.Logger != nil {
			rt.cfg.Logger.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status, elapsed)
		}
	})
}

func (rt *Router) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				rt.mPanics.Inc()
				if rt.cfg.Logger != nil {
					rt.cfg.Logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				}
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok nodes=%d\n", len(rt.nodes))
}

// handleReadyz is the router's own readiness: 503 while draining, and 503
// when the prober's last completed round found no healthy node (a router
// with nowhere to route is not usefully ready). Before the first round — or
// with probing disabled — node health is unknown and the router optimistically
// reports ready.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case rt.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case rt.healthyCount.Load() == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "no healthy nodes (0/%d)\n", len(rt.nodes))
	default:
		fmt.Fprintf(w, "ready nodes=%d\n", len(rt.nodes))
	}
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.WriteText(w)
}

// nodeStatz is the /statz entry for one upstream node.
type nodeStatz struct {
	URL        string `json:"url"`
	Healthy    *bool  `json:"healthy,omitempty"` // nil until first probe
	ProbeError string `json:"probe_error,omitempty"`
	Requests   uint64 `json:"requests"`
	Errors     uint64 `json:"errors"`
	Retries    uint64 `json:"retries"`
}

func (rt *Router) handleStatz(w http.ResponseWriter, r *http.Request) {
	nodes := make([]nodeStatz, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		ns := nodeStatz{
			URL:      n.url,
			Requests: n.requests.Load(),
			Errors:   n.errors.Load(),
			Retries:  n.retries.Load(),
		}
		if n.probed.Load() {
			h := n.healthy.Load()
			ns.Healthy = &h
			ns.ProbeError = n.probeError()
		}
		nodes = append(nodes, ns)
	}
	body := map[string]any{
		"uptime_seconds": time.Since(rt.start).Seconds(),
		"router": map[string]any{
			"requests":         rt.mRequests.Value(),
			"errors":           rt.mErrors.Value(),
			"rejected":         rt.mRejected.Value(),
			"panics":           rt.mPanics.Value(),
			"partial_results":  rt.mPartials.Value(),
			"streamed_queries": rt.mStreamed.Value(),
			"proxied_requests": rt.mProxied.Value(),
			"ingested_docs":    rt.mIngested.Value(),
			"ingest_errors":    rt.mIngestErrors.Value(),
			"in_flight":        rt.limiter.InFlight(),
			"queue_depth":      rt.limiter.Queued(),
			"draining":         rt.draining.Load(),
		},
		"nodes": nodes,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}
