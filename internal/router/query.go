package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/pattern"
	"repro/internal/server"
)

// maxRequestBody mirrors tossd's own query-body bound.
const maxRequestBody = 1 << 20

// NodesInfo reports a routed request's cluster footprint: how many nodes the
// topology holds, how many the planner targeted (vs skipped as provably
// empty for the collection), how many of the targeted were reached, and —
// when some were not — which ones failed. Partial means answers from the
// failed nodes are missing: the response is a correct subset, not a
// complete one.
type NodesInfo struct {
	Configured int      `json:"configured"`
	Targeted   int      `json:"targeted"`
	Skipped    int      `json:"skipped"`
	Reached    int      `json:"reached"`
	Failed     []string `json:"failed,omitempty"`
	Partial    bool     `json:"partial"`
}

// RoutedResponse is tossd's QueryResponse plus the router's nodes block.
// The answers array is byte-identical to what one node holding every
// document would return (global sequence order, same JSON encoding); only
// the router-level envelope differs.
type RoutedResponse struct {
	server.QueryResponse
	Nodes NodesInfo `json:"nodes"`
}

// streamTrailer is the router's mid-stream failure sentinel. Like tossd's
// {"error":...} trailer it rides in-band as the final NDJSON line; the node
// fields identify which upstream died so a client (or an upstream router)
// can name the failing node rather than just "something broke".
type streamTrailer struct {
	Error   string   `json:"error"`
	Node    string   `json:"node,omitempty"`
	Failed  []string `json:"failed_nodes,omitempty"`
	Partial bool     `json:"partial"`
}

// versionTrailer is the router's success trailer, byte-identical to tossd's:
// a complete routed stream ends with {"ontology_version":N} where N is the
// highest snapshot version the contributing nodes reported (nodes mutate
// independently; the maximum names the most recent ontology any answer saw).
// Partial streams end with the streamTrailer instead.
type versionTrailer struct {
	OntologyVersion uint64 `json:"ontology_version"`
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req server.QueryRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		req.Stream = true
	}
	if err := rt.serveQuery(w, r, &req, body); err != nil {
		var he *httpError
		if errors.As(err, &he) {
			if he.status == http.StatusTooManyRequests {
				rt.mRejected.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(int(rt.cfg.DefaultTimeout.Seconds())+1))
			}
			http.Error(w, he.msg, he.status)
			return
		}
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
		case errors.Is(err, context.Canceled):
			http.Error(w, "request cancelled", 499)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

func (rt *Router) serveQuery(w http.ResponseWriter, r *http.Request, req *server.QueryRequest, rawBody []byte) error {
	start := time.Now()

	if (req.Pattern == "") == (req.Expr == "") {
		return httpErrorf(http.StatusBadRequest, "exactly one of pattern or expr is required")
	}
	format := strings.ToLower(req.Format)
	if format == "" {
		format = "json"
		if strings.Contains(r.Header.Get("Accept"), "application/xml") {
			format = "xml"
		}
	}

	// Classify the operation the way tossd does, then split routable from
	// proxy-only. Selections (plain and ranked) scatter: every answer comes
	// from one document, so answers gather back losslessly on sequence.
	// Joins, algebra and analyze combine state across documents that may
	// live on different nodes — those proxy to a single node when the
	// cluster has one, and are refused otherwise.
	op := "select"
	switch {
	case req.Expr != "":
		op = "algebra"
	case req.Right != "":
		op = "join"
	case req.Ranked:
		op = "ranked"
	}
	scatterable := (op == "select" || op == "ranked") && !req.Analyze && format == "json"
	if !scatterable {
		return rt.proxySingle(w, r, rawBody, req, op)
	}

	var pat *pattern.Tree
	var err error
	if pat, err = pattern.Parse(req.Pattern); err != nil {
		return httpErrorf(http.StatusBadRequest, "parsing pattern: %v", err)
	}
	if req.Stream && op != "select" {
		return httpErrorf(http.StatusBadRequest, "stream applies to selections and joins only")
	}

	timeout := rt.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > rt.cfg.MaxTimeout {
			timeout = rt.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	release, err := rt.limiter.Acquire(ctx)
	if err != nil {
		if errors.Is(err, server.ErrSaturated) {
			return httpErrorf(http.StatusTooManyRequests, "router saturated: %d executing, %d queued", rt.limiter.InFlight(), rt.limiter.Queued())
		}
		return err
	}
	defer release()

	targets, skipped, absent := rt.planTargets(ctx, req.Instance, conditionTags(pat))
	if absent {
		return httpErrorf(http.StatusNotFound, "unknown instance %q", req.Instance)
	}
	info := NodesInfo{
		Configured: len(rt.nodes),
		Targeted:   len(targets),
		Skipped:    len(skipped),
	}
	if len(targets) == 0 {
		// Every node provably holds zero documents for the collection: the
		// answer set is empty without touching a single node (no node was
		// asked, so no ontology version is known — the trailer carries 0).
		return rt.finishQuery(w, req, op, nil, info, 0, start, start)
	}

	// Upstream request: always streamed (ranked excepted — ranking is a
	// materialised op node-side), always with seqs (the merge key), always
	// JSON. The client's own stream/seqs wishes only shape the re-encoding.
	up := *req
	up.Stream = op == "select"
	up.Seqs = true
	up.Format = "json"
	up.TimeoutMS = int(time.Until(deadlineOf(ctx)) / time.Millisecond)
	upBody, err := json.Marshal(&up)
	if err != nil {
		return err
	}

	if op == "ranked" {
		return rt.gatherRanked(ctx, w, req, targets, upBody, info, start)
	}
	return rt.gatherStreamed(ctx, w, req, targets, upBody, info, start)
}

func deadlineOf(ctx context.Context) time.Time {
	d, _ := ctx.Deadline()
	return d
}

// conditionTags extracts the tag names a pattern's condition pins with
// equality — the planner-lite signal for ordering fan-out by each node's
// per-tag document counts.
func conditionTags(pat *pattern.Tree) []string {
	var tags []string
	for _, a := range pattern.Atoms(pat.Cond) {
		if a.Op != pattern.OpEq {
			continue
		}
		if a.X.Kind == pattern.TermAttr && a.X.Attr == "tag" && a.Y.Kind == pattern.TermValue {
			tags = append(tags, a.Y.Value)
		}
		if a.Y.Kind == pattern.TermAttr && a.Y.Attr == "tag" && a.X.Kind == pattern.TermValue {
			tags = append(tags, a.X.Value)
		}
	}
	return tags
}

// doNode issues one upstream POST with bounded retry: connect errors, 429s
// and 5xx responses retry with doubling backoff until the attempt budget or
// the deadline runs out. Responses that made it to a non-retryable status
// are returned as-is — including 4xx, which the caller interprets. A
// response that already began streaming is past the retry horizon by
// construction: retries happen strictly before the body is touched.
func (rt *Router) doNode(ctx context.Context, n *node, path string, body []byte) (*http.Response, error) {
	backoff := rt.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			n.retries.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, fmt.Errorf("%w (last error: %v)", ctx.Err(), lastErr)
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.url+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		n.requests.Add(1)
		resp, err := rt.client.Do(req)
		if err != nil {
			n.errors.Add(1)
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			n.errors.Add(1)
			lastErr = fmt.Errorf("status %d: %s", resp.StatusCode, readSnippet(resp.Body))
			resp.Body.Close()
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

func readSnippet(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	return strings.TrimSpace(string(b))
}

// fanResult extends a nodeStream with the terminal states a node can reach
// before it ever streams: not-found (holds nothing for the instance) and
// bad-request (the node rejected the query itself).
type fanResult struct {
	*nodeStream
	notFound bool
	badReq   string
}

// scatter launches one goroutine per target node; each either pumps its
// stream into its channel or records a terminal state and closes it.
func (rt *Router) scatter(ctx context.Context, targets []*node, upBody []byte) []*fanResult {
	results := make([]*fanResult, len(targets))
	for i, n := range targets {
		fr := &fanResult{nodeStream: &nodeStream{n: n, ch: make(chan mergeAnswer, streamPrefetch)}}
		results[i] = fr
		go func(fr *fanResult) {
			resp, err := rt.doNode(ctx, fr.n, "/v1/query", upBody)
			if err != nil {
				fr.err = err
				close(fr.ch)
				return
			}
			switch resp.StatusCode {
			case http.StatusOK:
				rt.pump(ctx, fr.nodeStream, resp.Body) // closes ch
			case http.StatusNotFound:
				// The node resolves the instance to nothing: zero
				// contribution, not a failure (summaries may have been
				// stale or absent when this node was targeted).
				fr.notFound = true
				resp.Body.Close()
				close(fr.ch)
			case http.StatusBadRequest:
				fr.badReq = readSnippet(resp.Body)
				resp.Body.Close()
				close(fr.ch)
			default:
				fr.err = fmt.Errorf("status %d: %s", resp.StatusCode, readSnippet(resp.Body))
				resp.Body.Close()
				close(fr.ch)
			}
		}(fr)
	}
	return results
}

// settle classifies the fan-out after the merge finished. stopped reports
// that the router cancelled the fan-out itself (answer limit reached):
// context-cancellation errors are then the router's own doing, not node
// failures.
func settle(results []*fanResult, stopped bool) (failed []string, failErrs []string, notFound int, badReq string) {
	for _, fr := range results {
		switch {
		case fr.err != nil:
			if stopped && (errors.Is(fr.err, context.Canceled) || errors.Is(fr.err, context.DeadlineExceeded)) {
				continue
			}
			failed = append(failed, fr.n.url)
			failErrs = append(failErrs, fmt.Sprintf("%s: %v", fr.n.url, fr.err))
		case fr.notFound:
			notFound++
		case fr.badReq != "" && badReq == "":
			badReq = fr.badReq
		}
	}
	return failed, failErrs, notFound, badReq
}

// gatherStreamed merges the per-node NDJSON streams by global sequence and
// answers the client either as its own NDJSON stream (flushed per line) or
// as a materialised JSON response. The merge's initial fill synchronises on
// every node's first line or terminal state, so nothing is committed to the
// client before each node has either started answering or failed — 4xx
// classification still gets a clean status line.
func (rt *Router) gatherStreamed(ctx context.Context, w http.ResponseWriter, req *server.QueryRequest, targets []*node, upBody []byte, info NodesInfo, start time.Time) error {
	fanStart := time.Now()
	fanCtx, fanCancel := context.WithCancel(ctx)
	defer fanCancel()
	results := rt.scatter(fanCtx, targets, upBody)
	streams := make([]*nodeStream, len(results))
	for i, fr := range results {
		streams[i] = fr.nodeStream
	}

	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var answers []server.Answer
	emitted := 0
	stopped := false
	var clientGone error
	mergeBySeq(streams, func(ma mergeAnswer) bool {
		a := server.Answer{XML: ma.XML}
		if req.Seqs {
			seq := ma.Seq
			a.Seq = &seq
		}
		if req.Stream {
			if emitted == 0 {
				rt.hFirstResult.Observe(time.Since(start).Seconds())
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.Header().Set("X-Toss-Nodes-Configured", strconv.Itoa(info.Configured))
				w.Header().Set("X-Toss-Nodes-Targeted", strconv.Itoa(info.Targeted))
				rt.mStreamed.Inc()
			}
			if err := enc.Encode(a); err != nil {
				clientGone = err
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
		} else {
			answers = append(answers, a)
		}
		emitted++
		if req.Limit > 0 && emitted >= req.Limit {
			stopped = true
			return false
		}
		return true
	})
	fanCancel() // release any pumps still running (limit stop, client gone)
	rt.hFanout.Observe(time.Since(fanStart).Seconds())
	if clientGone != nil {
		return nil // client went away mid-stream; nothing left to say
	}

	failed, failErrs, notFound, badReq := settle(results, stopped)
	info.Reached = info.Targeted - len(failed)
	info.Failed = failed
	info.Partial = len(failed) > 0
	if info.Partial {
		rt.mPartials.Inc()
	}
	var version uint64
	for _, fr := range results {
		if v := fr.version.Load(); v > version {
			version = v
		}
	}
	if emitted == 0 {
		// Nothing on the wire yet: plain statuses are still available.
		if badReq != "" && len(failed) == 0 {
			return httpErrorf(http.StatusBadRequest, "%s", badReq)
		}
		if notFound == info.Targeted && info.Targeted > 0 {
			return httpErrorf(http.StatusNotFound, "unknown instance %q", req.Instance)
		}
		if len(failed) == info.Targeted && info.Targeted > 0 {
			return httpErrorf(http.StatusBadGateway, "all %d node(s) failed: %s", info.Targeted, strings.Join(failErrs, "; "))
		}
	}
	if req.Stream {
		if emitted == 0 {
			rt.hFirstResult.Observe(time.Since(start).Seconds())
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Toss-Nodes-Configured", strconv.Itoa(info.Configured))
			w.Header().Set("X-Toss-Nodes-Targeted", strconv.Itoa(info.Targeted))
			rt.mStreamed.Inc()
			w.WriteHeader(http.StatusOK)
		}
		if info.Partial {
			enc.Encode(streamTrailer{
				Error:   fmt.Sprintf("partial result: %s", strings.Join(failErrs, "; ")),
				Node:    failed[0],
				Failed:  failed,
				Partial: true,
			})
		} else {
			enc.Encode(versionTrailer{OntologyVersion: version})
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if !stopped && emitted == 0 {
		rt.hFirstResult.Observe(time.Since(start).Seconds())
	}
	return rt.finishQuery(w, req, "select", answers, info, version, start, fanStart)
}

// gatherRanked fans a ranked selection out as materialised per-node top-k
// lists and merges them into the global ranking by (score, seq).
func (rt *Router) gatherRanked(ctx context.Context, w http.ResponseWriter, req *server.QueryRequest, targets []*node, upBody []byte, info NodesInfo, start time.Time) error {
	fanStart := time.Now()
	type rankedResult struct {
		n        *node
		answers  []mergeAnswer
		version  uint64
		err      error
		notFound bool
		badReq   string
	}
	results := make([]*rankedResult, len(targets))
	var wg sync.WaitGroup
	for i, n := range targets {
		rr := &rankedResult{n: n}
		results[i] = rr
		wg.Add(1)
		go func(rr *rankedResult) {
			defer wg.Done()
			resp, err := rt.doNode(ctx, rr.n, "/v1/query", upBody)
			if err != nil {
				rr.err = err
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusNotFound:
				rr.notFound = true
				return
			case http.StatusBadRequest:
				rr.badReq = readSnippet(resp.Body)
				return
			default:
				rr.err = fmt.Errorf("status %d: %s", resp.StatusCode, readSnippet(resp.Body))
				return
			}
			var qr server.QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				rt.nodeFailed(rr.n)
				rr.err = fmt.Errorf("decoding response: %v", err)
				return
			}
			rr.version = qr.OntologyVersion
			for _, a := range qr.Answers {
				if a.Seq == nil || a.Score == nil {
					rt.nodeFailed(rr.n)
					rr.err = errors.New("ranked answer missing seq or score")
					return
				}
				rr.answers = append(rr.answers, mergeAnswer{XML: a.XML, Seq: *a.Seq, Score: *a.Score, HasScore: true})
			}
		}(rr)
	}
	wg.Wait()
	rt.hFanout.Observe(time.Since(fanStart).Seconds())

	var failed, failErrs []string
	var lists [][]mergeAnswer
	var version uint64
	notFound := 0
	badReq := ""
	for _, rr := range results {
		switch {
		case rr.err != nil:
			failed = append(failed, rr.n.url)
			failErrs = append(failErrs, fmt.Sprintf("%s: %v", rr.n.url, rr.err))
		case rr.notFound:
			notFound++
		case rr.badReq != "":
			if badReq == "" {
				badReq = rr.badReq
			}
		default:
			lists = append(lists, rr.answers)
			if rr.version > version {
				version = rr.version
			}
		}
	}
	if badReq != "" && len(failed) == 0 {
		return httpErrorf(http.StatusBadRequest, "%s", badReq)
	}
	if notFound == info.Targeted && info.Targeted > 0 {
		return httpErrorf(http.StatusNotFound, "unknown instance %q", req.Instance)
	}
	if len(failed) == info.Targeted && info.Targeted > 0 {
		return httpErrorf(http.StatusBadGateway, "all %d node(s) failed: %s", info.Targeted, strings.Join(failErrs, "; "))
	}
	info.Reached = info.Targeted - len(failed)
	info.Failed = failed
	info.Partial = len(failed) > 0
	if info.Partial {
		rt.mPartials.Inc()
	}

	merged := mergeRanked(lists)
	if req.Limit > 0 && len(merged) > req.Limit {
		merged = merged[:req.Limit]
	}
	answers := make([]server.Answer, len(merged))
	for i, ma := range merged {
		score := ma.Score
		answers[i] = server.Answer{XML: ma.XML, Score: &score}
		if req.Seqs {
			seq := ma.Seq
			answers[i].Seq = &seq
		}
	}
	rt.hFirstResult.Observe(time.Since(start).Seconds())
	return rt.finishQuery(w, req, "ranked", answers, info, version, start, fanStart)
}

// finishQuery writes the materialised routed response.
func (rt *Router) finishQuery(w http.ResponseWriter, req *server.QueryRequest, op string, answers []server.Answer, info NodesInfo, version uint64, start, fanStart time.Time) error {
	if req.Stream {
		// Reachable only for the zero-target case: an empty stream, complete
		// by definition, still ends with the success trailer.
		rt.mStreamed.Inc()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(versionTrailer{OntologyVersion: version})
		return nil
	}
	if answers == nil {
		answers = []server.Answer{}
	}
	resp := RoutedResponse{
		QueryResponse: server.QueryResponse{
			Op:              op,
			Instance:        req.Instance,
			Count:           len(answers),
			Cached:          false,
			ElapsedMS:       float64(time.Since(start).Microseconds()) / 1e3,
			OntologyVersion: version,
			Answers:         answers,
		},
		Nodes: info,
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Toss-Nodes-Configured", strconv.Itoa(info.Configured))
	w.Header().Set("X-Toss-Nodes-Reached", strconv.Itoa(info.Reached))
	if info.Partial {
		w.Header().Set("X-Toss-Partial", "1")
	}
	return json.NewEncoder(w).Encode(resp)
}

// proxySingle forwards a request the router cannot scatter (joins, algebra,
// analyze, xml rendering) verbatim to the only node — when there is only
// one. Multi-node clusters refuse these with 501: a cross-node join would
// need data movement the wire protocol does not carry yet.
func (rt *Router) proxySingle(w http.ResponseWriter, r *http.Request, rawBody []byte, req *server.QueryRequest, op string) error {
	if len(rt.nodes) != 1 {
		return httpErrorf(http.StatusNotImplemented,
			"%s queries (and non-JSON formats) are not routable across %d nodes; run them against a single node", op, len(rt.nodes))
	}
	timeout := rt.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > rt.cfg.MaxTimeout {
			timeout = rt.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	release, err := rt.limiter.Acquire(ctx)
	if err != nil {
		if errors.Is(err, server.ErrSaturated) {
			return httpErrorf(http.StatusTooManyRequests, "router saturated: %d executing, %d queued", rt.limiter.InFlight(), rt.limiter.Queued())
		}
		return err
	}
	defer release()

	path := "/v1/query"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	resp, err := rt.doNode(ctx, rt.nodes[0], path, rawBody)
	if err != nil {
		return httpErrorf(http.StatusBadGateway, "node %s: %v", rt.nodes[0].url, err)
	}
	defer resp.Body.Close()
	rt.mProxied.Inc()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	return nil
}

// flushCopy copies the upstream body through, flushing per chunk so proxied
// NDJSON streams keep their incremental delivery.
func flushCopy(w http.ResponseWriter, r io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
