package seo

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ontology"
	"repro/internal/similarity"
)

// randHierarchy builds a random DAG over n terms whose names cluster in
// small groups (shared prefix + one-digit suffix, so Levenshtein at eps 1
// forms real multi-member clusters).
func randHierarchy(r *rand.Rand, n int) *ontology.Hierarchy {
	h := ontology.NewHierarchy()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("g%02d-%d", r.Intn(n/3+1), r.Intn(10))
		h.AddNode(names[i])
	}
	edges := r.Intn(2 * n)
	for i := 0; i < edges; i++ {
		a, b := names[r.Intn(n)], names[r.Intn(n)]
		_ = h.AddEdge(a, b) // cycle/self-loop attempts are skipped
	}
	return h
}

// seoEqual compares every externally observable part of two SEOs.
func seoEqual(t *testing.T, got, want *SEO) {
	t.Helper()
	if !reflect.DeepEqual(got.Clusters, want.Clusters) {
		t.Fatalf("clusters differ:\ngot  %v\nwant %v", got.Clusters, want.Clusters)
	}
	if !reflect.DeepEqual(got.Mu, want.Mu) {
		t.Fatalf("mu differs:\ngot  %v\nwant %v", got.Mu, want.Mu)
	}
	if got.Hierarchy.String() != want.Hierarchy.String() {
		t.Fatalf("lifted hierarchy differs:\ngot\n%s\nwant\n%s", got.Hierarchy, want.Hierarchy)
	}
	if !reflect.DeepEqual(got.Dropped, want.Dropped) {
		t.Fatalf("dropped edges differ:\ngot  %v\nwant %v", got.Dropped, want.Dropped)
	}
	if got.Epsilon != want.Epsilon || got.MeasureName != want.MeasureName {
		t.Fatalf("parameters differ: got (%g,%s) want (%g,%s)", got.Epsilon, got.MeasureName, want.Epsilon, want.MeasureName)
	}
}

// deltaFor computes the contractual dirty set of one edge mutation: for an
// addition, Below(child) ∪ Above(parent) in the post-mutation hierarchy; for
// a retraction the same sets in the pre-mutation hierarchy (the caller
// computes it before removing the edge).
func deltaFor(h *ontology.Hierarchy, child, parent string) Delta {
	return Delta{Dirty: append(h.Below(child), h.Above(parent)...)}
}

// TestReclusterEquivalenceQuick drives random add/retract sequences through
// Recluster and checks each step byte-equals a from-scratch Enhance — for the
// production configuration (CompatibilityFilter) and for the paper's relaxed
// mode without the filter.
func TestReclusterEquivalenceQuick(t *testing.T) {
	d := similarity.Levenshtein{}
	for _, opts := range []Options{
		{CompatibilityFilter: true},
		{Relaxed: true},
	} {
		opts := opts
		check := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			h := randHierarchy(r, 12+r.Intn(24))
			eps := float64(r.Intn(2))
			cur, err := Enhance(h, d, eps, opts)
			if err != nil {
				return true // inconsistent start: nothing to update incrementally
			}
			for step := 0; step < 6; step++ {
				nodes := h.Nodes()
				a := nodes[r.Intn(len(nodes))]
				b := nodes[r.Intn(len(nodes))]
				var delta Delta
				if r.Intn(3) > 0 {
					h2 := h.Clone()
					if h2.AddEdge(a, b) != nil {
						continue // cycle or self-loop: mutation rejected upstream
					}
					h = h2
					delta = deltaFor(h, a, b)
				} else {
					if !h.HasEdge(a, b) {
						continue
					}
					delta = deltaFor(h, a, b)
					h2 := h.Clone()
					h2.RemoveEdge(a, b)
					h = h2
				}
				want, wantErr := Enhance(h, d, eps, opts)
				got, st, gotErr := Recluster(cur, h, d, eps, opts, delta)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d step %d: error mismatch: enhance=%v recluster=%v", seed, step, wantErr, gotErr)
				}
				if wantErr != nil {
					return true // both inconsistent; sequence ends here
				}
				if st.ComponentNodes > st.TotalNodes {
					t.Fatalf("seed %d: component %d larger than hierarchy %d", seed, st.ComponentNodes, st.TotalNodes)
				}
				seoEqual(t, got, want)
				cur = got
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}

// TestReclusterMergeEquivalence exercises the node-merge delta shape
// (Removed + dirty merged node) that AddConstraintLive's equality path uses.
func TestReclusterMergeEquivalence(t *testing.T) {
	d := similarity.Levenshtein{}
	opts := Options{CompatibilityFilter: true, Strings: map[string][]string{}}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		h := randHierarchy(r, 16)
		strings := map[string][]string{}
		for _, n := range h.Nodes() {
			strings[n] = []string{n}
		}
		opts.Strings = strings
		cur, err := Enhance(h, d, 1, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Merge two nodes the way Fusion.MergeTerms would: contract the set
		// of nodes between them into the lexicographically first member.
		nodes := h.Nodes()
		x, y := nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]
		if x == y {
			continue
		}
		h.BuildReachability()
		mset := map[string]bool{x: true, y: true}
		for _, n := range nodes {
			if (h.Leq(x, n) && h.Leq(n, y)) || (h.Leq(y, n) && h.Leq(n, x)) {
				mset[n] = true
			}
		}
		merged := ""
		for n := range mset {
			if merged == "" || n < merged {
				merged = n
			}
		}
		h2 := ontology.NewHierarchy()
		rename := func(n string) string {
			if mset[n] {
				return merged
			}
			return n
		}
		for _, n := range nodes {
			h2.AddNode(rename(n))
		}
		for _, e := range h.Edges() {
			c, p := rename(e.Child), rename(e.Parent)
			if c != p {
				if err := h2.AddEdge(c, p); err != nil {
					t.Fatalf("contraction created a cycle: %v", err)
				}
			}
		}
		h2.TransitiveReduction()
		var removed []string
		strs2 := map[string][]string{}
		mergedStrings := map[string]bool{}
		for _, n := range nodes {
			if mset[n] {
				if n != merged {
					removed = append(removed, n)
				}
				mergedStrings[n] = true
				continue
			}
			strs2[n] = []string{n}
		}
		for sstr := range mergedStrings {
			strs2[merged] = append(strs2[merged], sstr)
		}
		opts2 := opts
		opts2.Strings = strs2
		delta := Delta{
			Dirty:   append(h2.Below(merged), h2.Above(merged)...),
			Removed: removed,
		}
		want, err := Enhance(h2, d, 1, opts2)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Recluster(cur, h2, d, 1, opts2, delta)
		if err != nil {
			t.Fatal(err)
		}
		seoEqual(t, got, want)
	}
}

// TestReclusterComponentBound is the acceptance bound: a 1-edge change on a
// 5000-term ontology must re-examine fewer than 5% of the nodes.
func TestReclusterComponentBound(t *testing.T) {
	const n = 5000
	h := ontology.NewHierarchy()
	// 50 branches of 100 terms each under a root; term strings are sparse
	// enough that eps-1 Levenshtein clusters stay small.
	for b := 0; b < 50; b++ {
		parent := fmt.Sprintf("branch-%02d-root", b)
		h.MustAddEdge(parent, "root")
		for i := 0; i < 99; i++ {
			h.MustAddEdge(fmt.Sprintf("b%02dterm%04dx", b, i*37), parent)
		}
	}
	if h.NodeCount() < n {
		t.Fatalf("fixture has %d nodes, want >= %d", h.NodeCount(), n)
	}
	d := similarity.Levenshtein{}
	opts := Options{CompatibilityFilter: true}
	cur, err := Enhance(h, d, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	h2 := h.Clone()
	if err := h2.AddEdge("b00term0037x", "branch-07-root"); err != nil {
		t.Fatal(err)
	}
	got, st, err := Recluster(cur, h2, d, 1, opts, deltaFor(h2, "b00term0037x", "branch-07-root"))
	if err != nil {
		t.Fatal(err)
	}
	if limit := h2.NodeCount() / 20; st.ComponentNodes >= limit {
		t.Fatalf("1-edge change re-clustered %d of %d nodes (>= 5%% bound %d)", st.ComponentNodes, st.TotalNodes, limit)
	}
	if st.ComponentNodes == 0 {
		t.Fatal("expected a non-empty recluster component")
	}
	want, err := Enhance(h2, d, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	seoEqual(t, got, want)
}
