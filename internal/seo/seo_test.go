package seo

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ontology"
	"repro/internal/similarity"
)

// fig13Hierarchy builds the toy isa ontology of the paper's Figure 13(a):
// relation, relational ≤ data model; model, models, data model ≤
// abstraction (schematically).
func fig13Hierarchy() *ontology.Hierarchy {
	h := ontology.NewHierarchy()
	h.MustAddEdge("relation", "data model")
	h.MustAddEdge("relational", "data model")
	h.MustAddEdge("data model", "abstraction")
	h.MustAddEdge("model", "abstraction")
	h.MustAddEdge("models", "abstraction")
	return h
}

// TestPaperFig13Example reproduces Example 11: with Levenshtein and ε = 2,
// SEA merges {relation, relational} and {model, models}, removing the four
// singleton nodes.
func TestPaperFig13Example(t *testing.T) {
	h := fig13Hierarchy()
	s, err := Enhance(h, similarity.Levenshtein{}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Similar("relation", "relational") {
		t.Error("relation ~ relational expected (d=2)")
	}
	if !s.Similar("model", "models") {
		t.Error("model ~ models expected (d=1)")
	}
	if s.Similar("relation", "model") {
		t.Error("relation !~ model expected")
	}
	// Condition 4: no SEO node is a subset of another; the merged pairs
	// replace their singletons.
	if got := s.SimilarTo("relation"); !reflect.DeepEqual(got, []string{"relation", "relational"}) {
		t.Errorf("SimilarTo(relation) = %v", got)
	}
	// μ maps unmerged nodes to themselves.
	if mu := s.Mu["abstraction"]; len(mu) != 1 || s.Clusters[mu[0]][0] != "abstraction" {
		t.Errorf("mu(abstraction) = %v", mu)
	}
	// Order lifted: the merged {relation, relational} node sits below
	// data model, which sits below abstraction.
	if !s.Leq("relation", "abstraction") {
		t.Error("lifted order lost relation <= abstraction")
	}
	if !s.Leq("relational", "data model") {
		t.Error("lifted order lost relational <= data model")
	}
	if s.Leq("abstraction", "relation") {
		t.Error("order must not be inverted")
	}
	if s.String() == "" {
		t.Error("String should render")
	}
}

func TestEpsilonZeroIsIdentity(t *testing.T) {
	h := fig13Hierarchy()
	s, err := Enhance(h, similarity.Levenshtein{}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NodeCount() != h.NodeCount() {
		t.Errorf("eps=0 should keep %d singletons, got %d", h.NodeCount(), s.NodeCount())
	}
	for _, n := range h.Nodes() {
		for _, m := range h.Nodes() {
			if s.Similar(n, m) != (n == m) {
				t.Errorf("eps=0 Similar(%s,%s) wrong", n, m)
			}
			if s.Leq(n, m) != h.Leq(n, m) {
				t.Errorf("eps=0 Leq(%s,%s) changed", n, m)
			}
		}
	}
}

// TestInconsistency builds the situation of Definition 9: merging two terms
// whose order contexts differ fabricates order, so no strict enhancement
// exists.
func TestInconsistency(t *testing.T) {
	h := ontology.NewHierarchy()
	h.MustAddEdge("date", "time")                                // "date" has a parent
	h.AddNode("name")                                            // "name" does not
	h.MustAddEdge("cikm", "name")                                // and has a child
	_, err := Enhance(h, similarity.Levenshtein{}, 3, Options{}) // d(date,name)=3
	var inc *InconsistencyError
	if !errors.As(err, &inc) {
		t.Fatalf("expected InconsistencyError, got %v", err)
	}
	// Relaxed mode succeeds and records the dropped edges.
	s, err := Enhance(h, similarity.Levenshtein{}, 3, Options{Relaxed: true})
	if err != nil {
		t.Fatalf("relaxed enhancement failed: %v", err)
	}
	if len(s.Dropped) == 0 {
		t.Error("relaxed mode should record dropped edges")
	}
	// The compatibility filter avoids the merge entirely.
	s2, err := Enhance(h, similarity.Levenshtein{}, 3, Options{CompatibilityFilter: true})
	if err != nil {
		t.Fatalf("filtered enhancement failed: %v", err)
	}
	if s2.Similar("date", "name") {
		t.Error("filter must not merge order-incompatible terms")
	}
}

func TestMultiClusterMembership(t *testing.T) {
	// A at distance ≤ ε from both B and C, but d(B, C) > ε: per the
	// discussion below Definition 8, A belongs to two clusters {A,B} and
	// {A,C}.
	h := ontology.NewHierarchy()
	for _, n := range []string{"abc", "abd", "bbc"} { // d(abc,abd)=1, d(abc,bbc)=1, d(abd,bbc)=2
		h.AddNode(n)
	}
	s, err := Enhance(h, similarity.Levenshtein{}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Mu["abc"]); got != 2 {
		t.Fatalf("mu(abc) has %d clusters, want 2 (%v)", got, s.Mu["abc"])
	}
	if !s.Similar("abc", "abd") || !s.Similar("abc", "bbc") {
		t.Error("abc should be similar to both")
	}
	if s.Similar("abd", "bbc") {
		t.Error("abd and bbc are 2 apart; not similar at eps=1")
	}
}

func TestNodeDistanceMultiString(t *testing.T) {
	d := similarity.Levenshtein{}
	// Node distance is the min over cross pairs.
	got := NodeDistance(d, []string{"booktitle", "conference"}, []string{"conferences"})
	if got != 1 {
		t.Errorf("NodeDistance = %g, want 1 (conference vs conferences)", got)
	}
	if NodeDistance(d, nil, []string{"x"}) != NodeDistance(d, []string{"x"}, nil) {
		t.Error("empty-node distance should be symmetric (infinite)")
	}
	// Lemma 1 shortcut agrees with the full computation for single-string
	// nodes under a strong measure.
	a, b := []string{"model"}, []string{"models"}
	if NodeDistance(d, a, b) != 1 {
		t.Error("single-string node distance wrong")
	}
}

func TestSimilarUnknownTerm(t *testing.T) {
	h := fig13Hierarchy()
	s, err := Enhance(h, similarity.Levenshtein{}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Similar("ghost", "model") || s.Similar("ghost", "ghost") {
		t.Error("unknown terms have no clusters")
	}
	if got := s.SimilarTo("ghost"); len(got) != 0 {
		t.Errorf("SimilarTo(unknown) should be empty, got %v", got)
	}
}

// TestTheorem1Equivalence: two enhancements of the same hierarchy are
// isomorphic — here checked as equality of canonical cluster sets and of the
// lifted order, with node insertion order shuffled via different hierarchies
// built in different orders.
func TestTheorem1Equivalence(t *testing.T) {
	build := func(perm []int) *ontology.Hierarchy {
		edges := [][2]string{
			{"relation", "data model"},
			{"relational", "data model"},
			{"data model", "abstraction"},
			{"model", "abstraction"},
			{"models", "abstraction"},
		}
		h := ontology.NewHierarchy()
		for _, i := range perm {
			h.MustAddEdge(edges[i][0], edges[i][1])
		}
		return h
	}
	s1, err := Enhance(build([]int{0, 1, 2, 3, 4}), similarity.Levenshtein{}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Enhance(build([]int{4, 2, 0, 3, 1}), similarity.Levenshtein{}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentSEOs(s1, s2) {
		t.Fatalf("enhancements differ:\n%s\nvs\n%s", s1, s2)
	}
}

// equivalentSEOs checks the Theorem 1 isomorphism via canonical cluster
// signatures.
func equivalentSEOs(a, b *SEO) bool {
	sig := func(s *SEO) []string {
		var out []string
		for _, members := range s.Clusters {
			out = append(out, strJoin(members))
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(sig(a), sig(b)) {
		return false
	}
	// Lifted order agrees on all base-node pairs.
	nodes := map[string]bool{}
	for n := range a.Mu {
		nodes[n] = true
	}
	for u := range nodes {
		for v := range nodes {
			if a.Leq(u, v) != b.Leq(u, v) {
				return false
			}
		}
	}
	return true
}

func strJoin(s []string) string {
	out := ""
	for _, v := range s {
		out += v + "|"
	}
	return out
}

// randomHierarchy builds a random DAG over short random strings so that
// similarity collisions happen.
func randomSEOHierarchy(rng *rand.Rand, n int) *ontology.Hierarchy {
	h := ontology.NewHierarchy()
	alphabet := "abx"
	names := map[string]bool{}
	var list []string
	for len(list) < n {
		k := 1 + rng.Intn(4)
		b := make([]byte, k)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		s := string(b)
		if !names[s] {
			names[s] = true
			list = append(list, s)
		}
	}
	for _, s := range list {
		h.AddNode(s)
	}
	for i := 0; i < len(list); i++ {
		for j := i + 1; j < len(list); j++ {
			if rng.Intn(4) == 0 {
				h.MustAddEdge(list[i], list[j])
			}
		}
	}
	return h
}

// TestQuickDefinition8Conditions: whenever strict SEA succeeds, the output
// satisfies conditions (2), (3) and (4) of Definition 8; whichever mode runs,
// the enhanced hierarchy is acyclic (it is an ontology.Hierarchy, which
// enforces acyclicity structurally).
func TestQuickDefinition8Conditions(t *testing.T) {
	d := similarity.Levenshtein{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomSEOHierarchy(rng, 3+rng.Intn(8))
		eps := float64(rng.Intn(3))
		s, err := Enhance(h, d, eps, Options{})
		if err != nil {
			var inc *InconsistencyError
			return errors.As(err, &inc) // failure is allowed, but only this one
		}
		nodes := h.Nodes()
		for _, name := range nodes {
			if len(s.Mu[name]) == 0 {
				t.Logf("seed %d: node %q lost from mu", seed, name)
				return false
			}
		}
		// Condition (2): all cluster members pairwise within eps.
		for _, members := range s.Clusters {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					if d.Distance(members[i], members[j]) > eps {
						t.Logf("seed %d: cluster pair %q %q beyond eps", seed, members[i], members[j])
						return false
					}
				}
			}
		}
		// Condition (3): every within-eps pair shares some cluster.
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if d.Distance(nodes[i], nodes[j]) <= eps && !s.Similar(nodes[i], nodes[j]) {
					t.Logf("seed %d: %q %q within eps but no shared cluster", seed, nodes[i], nodes[j])
					return false
				}
			}
		}
		// Condition (4): no cluster is a subset of another.
		names := make([]string, 0, len(s.Clusters))
		for n := range s.Clusters {
			names = append(names, n)
		}
		for _, a := range names {
			for _, b := range names {
				if a != b && subset(s.Clusters[a], s.Clusters[b]) {
					t.Logf("seed %d: cluster %q subset of %q", seed, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func subset(a, b []string) bool {
	set := map[string]bool{}
	for _, v := range b {
		set[v] = true
	}
	for _, v := range a {
		if !set[v] {
			return false
		}
	}
	return true
}

// TestQuickCompatibilityFilterAlwaysConsistent: with the order-compatibility
// filter, Enhance never reports inconsistency and preserves the base order
// exactly (condition (1), both directions).
func TestQuickCompatibilityFilterAlwaysConsistent(t *testing.T) {
	d := similarity.Levenshtein{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomSEOHierarchy(rng, 3+rng.Intn(8))
		eps := float64(rng.Intn(4))
		s, err := Enhance(h, d, eps, Options{CompatibilityFilter: true})
		if err != nil {
			t.Logf("seed %d: filtered enhancement failed: %v", seed, err)
			return false
		}
		if len(s.Dropped) != 0 {
			t.Logf("seed %d: filtered enhancement dropped edges", seed)
			return false
		}
		// Order preservation (condition (1) forward): base Leq implies
		// lifted Leq; and no fabricated strict order between unrelated,
		// dissimilar nodes.
		nodes := h.Nodes()
		for _, u := range nodes {
			for _, v := range nodes {
				if h.Leq(u, v) && !s.Leq(u, v) {
					t.Logf("seed %d: lost order %q <= %q", seed, u, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTheorem1OnRandom: strict SEA output is order-independent (the
// uniqueness of Theorem 1) on random hierarchies.
func TestQuickTheorem1OnRandom(t *testing.T) {
	d := similarity.Levenshtein{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomSEOHierarchy(rng, 3+rng.Intn(7))
		eps := float64(rng.Intn(3))
		s1, err1 := Enhance(h, d, eps, Options{})
		// Rebuild the same hierarchy with a different node insertion order.
		h2 := ontology.NewHierarchy()
		nodes := h.Nodes()
		for i := len(nodes) - 1; i >= 0; i-- {
			h2.AddNode(nodes[i])
		}
		edges := h.Edges()
		for i := len(edges) - 1; i >= 0; i-- {
			h2.MustAddEdge(edges[i].Child, edges[i].Parent)
		}
		s2, err2 := Enhance(h2, d, eps, Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: consistency verdict differs", seed)
			return false
		}
		if err1 != nil {
			return true
		}
		if !equivalentSEOs(s1, s2) {
			t.Logf("seed %d: enhancements differ", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
