// Incremental SEA: re-cluster only the part of the hierarchy a mutation
// touched. The similarity graph of Definition 8 decomposes the SEO into
// connected components; an edge addition/retraction or a node merge can only
// change similarity edges, order-compatibility, or order-lifting verdicts
// for nodes in the component reachable from the mutation's dirty set, so the
// cliques (clusters) outside that component — and the lift verdicts between
// them — are reused verbatim. Recluster is proven equivalent to a
// from-scratch Enhance by testing/quick in incremental_test.go.
package seo

import (
	"sort"

	"repro/internal/ontology"
	"repro/internal/similarity"
)

// Delta names what a hierarchy mutation touched, in hierarchy-node terms.
type Delta struct {
	// Dirty lists nodes whose similarity or order neighbourhood may have
	// changed. The caller must include every node whose contained-string set
	// changed and every node whose ancestor or descendant set changed: for an
	// edge mutation x ≤ y that is Below(x) ∪ Above(y) — taken in the
	// post-mutation hierarchy for additions and the pre-mutation hierarchy
	// for retractions; for a merge, Below ∪ Above of the merged node.
	// Unknown names are ignored, so passing supersets is safe.
	Dirty []string
	// Removed lists nodes deleted from the hierarchy (merges contract
	// several nodes into one); their old clusters are dissolved and the
	// surviving co-members re-clustered.
	Removed []string
}

// ReclusterStats quantifies how much work an incremental update did — the
// counters the component-bound acceptance tests and the toss_ontology_*
// metrics read.
type ReclusterStats struct {
	// DirtyNodes and ComponentNodes are the seed set size and the size of
	// the affected similarity component actually re-clustered; TotalNodes is
	// the hierarchy size for comparison.
	DirtyNodes     int
	ComponentNodes int
	TotalNodes     int
	// ReusedClusters were copied from the previous SEO untouched;
	// RebuiltClusters came out of the component's clique enumeration.
	ReusedClusters  int
	RebuiltClusters int
	// SimChecks counts node pairs re-measured for similarity; PairChecks
	// counts cluster pairs whose order lift was recomputed.
	SimChecks  int
	PairChecks int
}

// Recluster incrementally updates prev — a similarity enhancement of some
// earlier version of h — to the current h, re-clustering only the similarity
// component touched by delta. The result is byte-identical (clusters, names,
// Mu, hierarchy, dropped edges) to Enhance(h, d, eps, opts); d, eps and opts
// must be the ones prev was built with. A nil prev falls back to Enhance.
func Recluster(prev *SEO, h *ontology.Hierarchy, d similarity.Measure, eps float64, opts Options, delta Delta) (*SEO, *ReclusterStats, error) {
	if prev == nil || prev.lift == nil {
		s, err := Enhance(h, d, eps, opts)
		if err != nil {
			return nil, nil, err
		}
		st := &ReclusterStats{
			TotalNodes:      h.NodeCount(),
			ComponentNodes:  h.NodeCount(),
			RebuiltClusters: len(s.Clusters),
		}
		return s, st, nil
	}

	nodes := h.Nodes()
	nodeSet := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		nodeSet[n] = true
	}
	strs := func(n string) []string {
		if opts.Strings != nil {
			if s := opts.Strings[n]; len(s) > 0 {
				return s
			}
		}
		return []string{n}
	}
	st := &ReclusterStats{TotalNodes: len(nodes)}

	dirty := map[string]bool{}
	for _, n := range delta.Dirty {
		if nodeSet[n] {
			dirty[n] = true
		}
	}
	st.DirtyNodes = len(dirty)

	h.BuildReachability()

	// Fresh similarity edges incident to dirty nodes: only these can differ
	// from the previous graph — a clean–clean pair has unchanged strings and
	// unchanged ancestor/descendant sets, so its edge is exactly its old
	// co-cluster adjacency.
	adjNew := map[string]map[string]bool{}
	link := func(a, b string) {
		if adjNew[a] == nil {
			adjNew[a] = map[string]bool{}
		}
		adjNew[a][b] = true
	}
	for a := range dirty {
		sa := strs(a)
		for _, b := range nodes {
			if b == a {
				continue
			}
			st.SimChecks++
			if !nodeWithin(d, sa, strs(b), eps, opts.DisableLemma1) {
				continue
			}
			if opts.CompatibilityFilter && !orderCompatible(h, a, b) {
				continue
			}
			link(a, b)
			link(b, a)
		}
	}

	// Old adjacency of a surviving node: its co-members in any prev cluster.
	oldCo := func(n string) []string {
		var out []string
		for _, c := range prev.Mu[n] {
			for _, m := range prev.Clusters[c] {
				if m != n && nodeSet[m] {
					out = append(out, m)
				}
			}
		}
		return out
	}

	// The affected component: BFS from the dirty nodes (plus survivors of
	// clusters that lost a removed member) over the union of old and new
	// adjacency. Every old or new similarity edge incident to the component
	// stays inside it, so cliques decompose across its boundary.
	comp := map[string]bool{}
	var queue []string
	push := func(n string) {
		if nodeSet[n] && !comp[n] {
			comp[n] = true
			queue = append(queue, n)
		}
	}
	for n := range dirty {
		push(n)
	}
	for _, r := range delta.Removed {
		for _, c := range prev.Mu[r] {
			for _, m := range prev.Clusters[c] {
				push(m)
			}
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for b := range adjNew[n] {
			push(b)
		}
		for _, b := range oldCo(n) {
			push(b)
		}
	}
	st.ComponentNodes = len(comp)

	// Clique enumeration restricted to the component. Clean–clean adjacency
	// inside it is the (unchanged) old co-membership; pairs with a dirty
	// endpoint were just recomputed.
	compNodes := make([]string, 0, len(comp))
	for n := range comp {
		compNodes = append(compNodes, n)
	}
	sort.Strings(compNodes)
	idx := make(map[string]int, len(compNodes))
	for i, n := range compNodes {
		idx[n] = i
	}
	adj := make([]map[int]bool, len(compNodes))
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	inOldCluster := func(a, b string) bool {
		i, j := 0, 0
		ca, cb := prev.Mu[a], prev.Mu[b]
		for i < len(ca) && j < len(cb) {
			switch {
			case ca[i] == cb[j]:
				return true
			case ca[i] < cb[j]:
				i++
			default:
				j++
			}
		}
		return false
	}
	for i, a := range compNodes {
		for j := i + 1; j < len(compNodes); j++ {
			b := compNodes[j]
			var edge bool
			if dirty[a] || dirty[b] {
				edge = adjNew[a][b]
			} else {
				edge = inOldCluster(a, b)
			}
			if edge {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}
	rebuilt := maximalCliques(adj)

	// Final cluster set: prev clusters disjoint from the component (and free
	// of removed nodes) plus the component's fresh cliques, canonically
	// ordered so naming matches a from-scratch Enhance.
	var all [][]string
	dirtyKeys := map[string]bool{}
	prevKeys := make(map[string]bool, len(prev.Clusters))
	for _, ms := range prev.Clusters {
		prevKeys[clusterKey(ms)] = true
	}
	for _, ms := range prev.Clusters {
		touched := false
		for _, m := range ms {
			if comp[m] || !nodeSet[m] {
				touched = true
				break
			}
		}
		if touched {
			continue
		}
		all = append(all, ms)
		st.ReusedClusters++
	}
	for _, cl := range rebuilt {
		ms := make([]string, len(cl))
		for k, i := range cl {
			ms[k] = compNodes[i]
		}
		sort.Strings(ms)
		all = append(all, ms)
		// A rebuilt clique whose member set existed before and contains no
		// dirty node has unchanged lift inputs; leave it clean so its pair
		// verdicts are reused too.
		key := clusterKey(ms)
		clean := prevKeys[key]
		for _, m := range ms {
			if dirty[m] {
				clean = false
				break
			}
		}
		if !clean {
			dirtyKeys[key] = true
		}
		st.RebuiltClusters++
	}
	sortClusterLists(all)

	s, err := assemble(h, all, d, eps, opts, prev, dirtyKeys, st)
	if err != nil {
		return nil, nil, err
	}
	return s, st, nil
}
