package seo_test

import (
	"fmt"

	"repro/internal/ontology"
	"repro/internal/seo"
	"repro/internal/similarity"
)

// The paper's Example 11 (Figure 13): with Levenshtein and ε = 2, SEA merges
// {relation, relational} and {model, models} while preserving the isa order.
func ExampleEnhance() {
	h := ontology.NewHierarchy()
	h.MustAddEdge("relation", "data model")
	h.MustAddEdge("relational", "data model")
	h.MustAddEdge("data model", "abstraction")
	h.MustAddEdge("model", "abstraction")
	h.MustAddEdge("models", "abstraction")

	s, err := seo.Enhance(h, similarity.Levenshtein{}, 2, seo.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Similar("relation", "relational"))
	fmt.Println(s.Similar("relation", "model"))
	fmt.Println(s.SimilarTo("model"))
	fmt.Println(s.Leq("relational", "abstraction"))
	// Output:
	// true
	// false
	// [model models]
	// true
}
