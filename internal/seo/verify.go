package seo

import (
	"fmt"

	"repro/internal/ontology"
	"repro/internal/similarity"
)

// Verify checks that s is a similarity enhancement of h w.r.t. measure d and
// threshold eps, per Definition 8 of the paper:
//
//	(1) order preservation in both directions (for SEOs built with the
//	    compatibility filter or strict SEA; relaxed SEOs may legitimately
//	    fail the forward direction on their Dropped edges, which Verify
//	    tolerates when they are recorded);
//	(2) all cluster members pairwise within eps;
//	(3) every within-eps pair shares a cluster;
//	(4) no cluster is a subset of another.
//
// strings gives each H-node's contained strings (nil ⇒ the node name). A nil
// return means the SEO verifies.
func Verify(h *ontology.Hierarchy, d similarity.Measure, eps float64, s *SEO, strings map[string][]string) error {
	strs := func(n string) []string {
		if strings != nil {
			if v := strings[n]; len(v) > 0 {
				return v
			}
		}
		return []string{n}
	}
	nodes := h.Nodes()

	// Every base node appears in μ.
	for _, n := range nodes {
		if len(s.Mu[n]) == 0 {
			return fmt.Errorf("seo: node %q missing from mu", n)
		}
	}
	// (2) cluster members pairwise within eps.
	for name, members := range s.Clusters {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if got := NodeDistance(d, strs(members[i]), strs(members[j])); got > eps {
					return fmt.Errorf("seo: cluster %q holds %q and %q at distance %g > eps %g",
						name, members[i], members[j], got, eps)
				}
			}
		}
	}
	// (3) within-eps pairs share a cluster — modulo the order-compatibility
	// filter, whose exclusions are semantic, not accidental: only flag a
	// violation when the pair is order-compatible.
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := nodes[i], nodes[j]
			if NodeDistance(d, strs(a), strs(b)) <= eps && orderCompatible(h, a, b) && !s.Similar(a, b) {
				return fmt.Errorf("seo: %q and %q are within eps but share no cluster", a, b)
			}
		}
	}
	// (4) no cluster subsumes another.
	memberSets := map[string]map[string]bool{}
	for name, members := range s.Clusters {
		set := map[string]bool{}
		for _, m := range members {
			set[m] = true
		}
		memberSets[name] = set
	}
	for a, sa := range memberSets {
		for b, sb := range memberSets {
			if a == b {
				continue
			}
			if subsetOf(sa, sb) {
				return fmt.Errorf("seo: cluster %q is a subset of %q", a, b)
			}
		}
	}
	// (1) forward: base order implies lifted order (except via recorded
	// dropped edges in relaxed mode).
	dropped := map[[2]string]bool{}
	for _, e := range s.Dropped {
		dropped[[2]string{e.From, e.To}] = true
	}
	h.BuildReachability()
	for _, u := range nodes {
		for _, v := range nodes {
			if !h.Leq(u, v) || u == v {
				continue
			}
			if !s.Leq(u, v) && !droppedBetween(s, dropped, u, v) {
				return fmt.Errorf("seo: lost base order %q <= %q", u, v)
			}
		}
	}
	return nil
}

func subsetOf(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// droppedBetween reports whether a recorded dropped edge could explain the
// missing lifted order between u and v.
func droppedBetween(s *SEO, dropped map[[2]string]bool, u, v string) bool {
	if len(dropped) == 0 {
		return false
	}
	for _, cu := range s.Mu[u] {
		for _, cv := range s.Mu[v] {
			if dropped[[2]string{cu, cv}] {
				return true
			}
		}
	}
	// Longer paths through dropped edges are approximated permissively:
	// any dropped edge touching one of u's or v's clusters counts.
	for key := range dropped {
		for _, cu := range s.Mu[u] {
			if key[0] == cu {
				return true
			}
		}
		for _, cv := range s.Mu[v] {
			if key[1] == cv {
				return true
			}
		}
	}
	return false
}
