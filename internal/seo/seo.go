// Package seo implements similarity enhanced ontologies (Section 4.3 of the
// paper): the node similarity measure d over sets of strings (with the
// Lemma 1 shortcut for strong measures), the SEA algorithm of Figure 12 that
// clusters ε-similar hierarchy nodes into SEO nodes while preserving the
// partial order, similarity-consistency checking (Definition 9), and the
// structural-equivalence test behind Theorem 1.
package seo

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ontology"
	"repro/internal/similarity"
)

// SEO is a similarity enhancement (H', μ) of a hierarchy H. Its nodes are
// clusters of H-nodes (each cluster a maximal set of pairwise ε-similar
// nodes, per conditions (2)–(4) of Definition 8); its hierarchy lifts H's
// partial order to clusters (condition (1)).
type SEO struct {
	// Hierarchy is H', a DAG over cluster names.
	Hierarchy *ontology.Hierarchy
	// Clusters maps a cluster name to the sorted H-node names it contains
	// (= μ⁻¹ of the cluster).
	Clusters map[string][]string
	// Mu maps each H-node to the sorted cluster names containing it (μ).
	Mu map[string][]string
	// Epsilon and MeasureName record the parameters the SEO was built with.
	Epsilon     float64
	MeasureName string
	// Dropped lists order edges that relaxed construction removed because
	// the converse of condition (1) failed; empty for strict construction.
	Dropped []DroppedEdge

	// lift caches the order-lifting verdict of every ordered cluster pair
	// with existsLeq, keyed by the member-list keys of the two clusters.
	// Recluster reuses the verdicts of clean pairs, so an incremental update
	// re-examines only pairs that involve a rebuilt cluster.
	lift map[liftKey]liftEdge
}

// liftKey identifies an ordered cluster pair by member-list keys (cluster
// names are not stable across re-clustering; member sets are).
type liftKey [2]string

// liftEdge is one cached order-lifting verdict: ok means the all-pairs
// condition (converse of Definition 8 condition (1)) held; otherwise wa/wb
// witness the violating base pair.
type liftEdge struct {
	ok     bool
	wa, wb string
}

// clusterKey canonically identifies a cluster by its sorted member list.
func clusterKey(members []string) string { return strings.Join(members, "\x1f") }

// DroppedEdge records an H'-edge removed in relaxed mode, with one witness
// pair of H-nodes whose order the edge would have fabricated.
type DroppedEdge struct {
	From, To           string
	WitnessA, WitnessB string
}

// InconsistencyError reports similarity inconsistency (Definition 9): no
// similarity enhancement of H exists for the given measure and ε.
type InconsistencyError struct {
	Reason string
}

func (e *InconsistencyError) Error() string {
	return "seo: similarity inconsistent: " + e.Reason
}

// Options configures Enhance.
type Options struct {
	// Strings gives the set of strings contained in each H-node (fused
	// nodes merge several source terms). Nil means every node contains
	// exactly its own name.
	Strings map[string][]string
	// Relaxed makes construction drop (and record) H'-edges that violate
	// the converse of condition (1) instead of failing. The paper's strict
	// definition corresponds to Relaxed=false.
	Relaxed bool
	// CompatibilityFilter restricts clustering to order-compatible node
	// pairs: A and B may share a cluster only when their ancestor sets and
	// descendant sets in H coincide (ignoring one another). Under this
	// filter a similarity enhancement always exists — every H'-edge's
	// all-pairs order requirement holds by construction and no cycles can
	// arise — so inconsistency failures disappear. Formally this evaluates
	// SEA under the order-aware measure d'(A,B) = d(A,B) when A,B are
	// order-compatible and ∞ otherwise; it is how the production TOSS
	// pipeline avoids Definition 9 inconsistencies on real vocabularies
	// (e.g. Levenshtein("date","name") = 3 must not merge a temporal and a
	// naming concept).
	CompatibilityFilter bool
	// DisableLemma1 forces the full min-over-pairs node distance even for
	// strong measures; used by the Lemma 1 ablation benchmark.
	DisableLemma1 bool
}

// NodeDistance computes d(A, B) = min over cross pairs of contained strings
// (Definition 7's node measure). For strong measures over single-string
// nodes this is a single string comparison (Lemma 1).
func NodeDistance(d similarity.Measure, sa, sb []string) float64 {
	if len(sa) == 0 || len(sb) == 0 {
		return math.Inf(1)
	}
	if d.Strong() && len(sa) == 1 && len(sb) == 1 {
		return d.Distance(sa[0], sb[0])
	}
	best := math.Inf(1)
	for _, x := range sa {
		for _, y := range sb {
			if v := d.Distance(x, y); v < best {
				best = v
			}
		}
	}
	return best
}

// nodeWithin reports d(A,B) ≤ eps with lower-bound pruning.
func nodeWithin(d similarity.Measure, sa, sb []string, eps float64, noLemma1 bool) bool {
	if len(sa) == 0 || len(sb) == 0 {
		return false
	}
	if !noLemma1 && d.Strong() && len(sa) == 1 && len(sb) == 1 {
		return similarity.Within(d, sa[0], sb[0], eps)
	}
	for _, x := range sa {
		for _, y := range sb {
			if similarity.Within(d, x, y, eps) {
				return true
			}
		}
	}
	return false
}

// Enhance runs the SEA algorithm on hierarchy h with measure d and threshold
// eps. It returns the unique (up to renaming, Theorem 1) similarity
// enhancement, or an *InconsistencyError when none exists and opts.Relaxed
// is false.
func Enhance(h *ontology.Hierarchy, d similarity.Measure, eps float64, opts Options) (*SEO, error) {
	nodes := h.Nodes()
	strs := func(n string) []string {
		if opts.Strings != nil {
			if s := opts.Strings[n]; len(s) > 0 {
				return s
			}
		}
		return []string{n}
	}

	// Similarity graph: undirected edge A—B iff d(A,B) ≤ eps.
	idx := make(map[string]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	adj := make([]map[int]bool, len(nodes))
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	if opts.CompatibilityFilter {
		h.BuildReachability()
	}
	for i := 0; i < len(nodes); i++ {
		si := strs(nodes[i])
		for j := i + 1; j < len(nodes); j++ {
			if !nodeWithin(d, si, strs(nodes[j]), eps, opts.DisableLemma1) {
				continue
			}
			if opts.CompatibilityFilter && !orderCompatible(h, nodes[i], nodes[j]) {
				continue
			}
			adj[i][j] = true
			adj[j][i] = true
		}
	}

	// S'' = maximal cliques of the similarity graph (conditions (2)–(4)):
	// every member pair is ≤ eps apart (2); every ≤-eps pair co-occurs in
	// some clique (3); maximality rules out redundant subsets (4).
	cliques := maximalCliques(adj)
	members := make([][]string, len(cliques))
	for ci, cl := range cliques {
		ms := make([]string, len(cl))
		for k, i := range cl {
			ms[k] = nodes[i]
		}
		sort.Strings(ms)
		members[ci] = ms
	}
	sortClusterLists(members)
	return assemble(h, members, d, eps, opts, nil, nil, nil)
}

// sortClusterLists orders member lists lexicographically (each list already
// sorted), making cluster naming and edge processing independent of clique
// enumeration order — the invariant that lets the incremental Recluster
// reproduce a from-scratch Enhance byte for byte.
func sortClusterLists(ms [][]string) {
	sort.Slice(ms, func(i, j int) bool { return lessStrings(ms[i], ms[j]) })
}

func lessStrings(a, b []string) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

// assemble builds the SEO for a fixed, canonically sorted cluster set:
// naming, order lifting with the converse-of-(1)/acyclicity checks, and
// transitive reduction. When prev is non-nil, cached lift verdicts are reused
// for ordered pairs whose two clusters both carry member keys present in
// prev and absent from dirtyKeys; pairs involving a dirty cluster are
// recomputed against h. The output is a pure function of (h, cliques, d,
// eps, opts) either way — the cache only skips recomputation of verdicts
// whose inputs are unchanged. stats, when non-nil, counts recomputed pairs.
func assemble(h *ontology.Hierarchy, cliques [][]string, d similarity.Measure, eps float64, opts Options, prev *SEO, dirtyKeys map[string]bool, stats *ReclusterStats) (*SEO, error) {
	s := &SEO{
		Hierarchy:   ontology.NewHierarchy(),
		Clusters:    map[string][]string{},
		Mu:          map[string][]string{},
		Epsilon:     eps,
		MeasureName: d.Name(),
		lift:        make(map[liftKey]liftEdge),
	}
	names := make([]string, len(cliques))
	keys := make([]string, len(cliques))
	used := map[string]int{}
	for ci, ms := range cliques {
		name := ms[0]
		if n := used[name]; n > 0 {
			name = fmt.Sprintf("%s#%d", ms[0], n)
		}
		used[ms[0]]++
		names[ci] = name
		keys[ci] = clusterKey(ms)
		s.Clusters[name] = ms
		s.Hierarchy.AddNode(name)
		for _, m := range ms {
			s.Mu[m] = append(s.Mu[m], name)
		}
	}
	for _, v := range s.Mu {
		sort.Strings(v)
	}

	// Order lifting (condition (1) forward direction): cluster C1 precedes
	// C2 whenever some member of C1 precedes some member of C2 in H. The
	// verdict of each pair depends only on the two member sets and H's
	// reachability, so clean pairs may be copied from prev.
	h.BuildReachability()
	reuse := prev != nil && prev.lift != nil
	for i := range cliques {
		for j := range cliques {
			if i == j {
				continue
			}
			k := liftKey{keys[i], keys[j]}
			if reuse && !dirtyKeys[keys[i]] && !dirtyKeys[keys[j]] {
				if le, ok := prev.lift[k]; ok {
					s.lift[k] = le
				}
				continue
			}
			if stats != nil {
				stats.PairChecks++
			}
			if !existsLeq(h, cliques[i], cliques[j]) {
				continue
			}
			le := liftEdge{ok: true}
			if a, b, ok := allLeq(h, cliques[i], cliques[j]); !ok {
				le = liftEdge{wa: a, wb: b}
			}
			s.lift[k] = le
		}
	}
	// Acyclicity + converse of condition (1), applied in canonical order.
	for i := range cliques {
		for j := range cliques {
			if i == j {
				continue
			}
			le, ok := s.lift[liftKey{keys[i], keys[j]}]
			if !ok {
				continue
			}
			if !le.ok {
				if !opts.Relaxed {
					return nil, &InconsistencyError{Reason: fmt.Sprintf(
						"edge %s -> %s requires %s <= %s in the base hierarchy, which does not hold",
						names[i], names[j], le.wa, le.wb)}
				}
				s.Dropped = append(s.Dropped, DroppedEdge{From: names[i], To: names[j], WitnessA: le.wa, WitnessB: le.wb})
				continue
			}
			if err := s.Hierarchy.AddEdge(names[i], names[j]); err != nil {
				if !opts.Relaxed {
					return nil, &InconsistencyError{Reason: fmt.Sprintf(
						"enhanced hierarchy is cyclic: %v", err)}
				}
				s.Dropped = append(s.Dropped, DroppedEdge{From: names[i], To: names[j]})
			}
		}
	}
	s.Hierarchy.TransitiveReduction()
	return s, nil
}

// existsLeq reports whether some a ∈ as and b ∈ bs satisfy a ≤ b with a ≠ b.
func existsLeq(h *ontology.Hierarchy, as, bs []string) bool {
	for _, a := range as {
		for _, b := range bs {
			if a != b && h.Leq(a, b) {
				return true
			}
		}
	}
	return false
}

// allLeq checks a ≤ b for every pair; on failure it returns the witness pair.
func allLeq(h *ontology.Hierarchy, as, bs []string) (string, string, bool) {
	for _, a := range as {
		for _, b := range bs {
			if !h.Leq(a, b) {
				return a, b, false
			}
		}
	}
	return "", "", true
}

// Similar reports whether H-nodes a and b are deemed similar by this SEO:
// per Definition 8 condition (3)/(2), iff some cluster contains both.
func (s *SEO) Similar(a, b string) bool {
	if a == b {
		return len(s.Mu[a]) > 0
	}
	ca, cb := s.Mu[a], s.Mu[b]
	// Both lists are sorted; intersect.
	i, j := 0, 0
	for i < len(ca) && j < len(cb) {
		switch {
		case ca[i] == cb[j]:
			return true
		case ca[i] < cb[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// SimilarTo returns the sorted set of H-nodes sharing a cluster with a
// (including a itself when present).
func (s *SEO) SimilarTo(a string) []string {
	set := map[string]bool{}
	for _, c := range s.Mu[a] {
		for _, m := range s.Clusters[c] {
			set[m] = true
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Leq reports whether every cluster of a precedes some... — more precisely,
// it lifts the base order through the SEO: a ≤' b iff some cluster of a
// reaches some cluster of b in H' (length ≥ 0). This is the reachability the
// TOSS isa/below conditions consult.
func (s *SEO) Leq(a, b string) bool {
	for _, ca := range s.Mu[a] {
		for _, cb := range s.Mu[b] {
			if s.Hierarchy.Leq(ca, cb) {
				return true
			}
		}
	}
	return false
}

// NodeCount returns the number of SEO clusters.
func (s *SEO) NodeCount() int { return len(s.Clusters) }

// String renders cluster memberships and the lifted order.
func (s *SEO) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Clusters))
	for n := range s.Clusters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s = {%s}\n", n, strings.Join(s.Clusters[n], ", "))
	}
	b.WriteString(s.Hierarchy.String())
	return b.String()
}

// maximalCliques enumerates all maximal cliques of the undirected graph
// given by adj, using Bron–Kerbosch with pivoting. Vertices are 0..len-1.
func maximalCliques(adj []map[int]bool) [][]int {
	if len(adj) == 0 {
		return nil
	}
	var out [][]int
	all := make([]int, len(adj))
	for i := range all {
		all[i] = i
	}
	var bk func(r, p, x []int)
	bk = func(r, p, x []int) {
		if len(p) == 0 && len(x) == 0 {
			clique := make([]int, len(r))
			copy(clique, r)
			out = append(out, clique)
			return
		}
		// Pivot: vertex of P ∪ X with most neighbours in P.
		pivot, best := -1, -1
		for _, v := range p {
			if n := countIn(adj[v], p); n > best {
				best, pivot = n, v
			}
		}
		for _, v := range x {
			if n := countIn(adj[v], p); n > best {
				best, pivot = n, v
			}
		}
		cand := make([]int, 0, len(p))
		for _, v := range p {
			if pivot < 0 || !adj[pivot][v] {
				cand = append(cand, v)
			}
		}
		pSet := map[int]bool{}
		for _, v := range p {
			pSet[v] = true
		}
		xSet := map[int]bool{}
		for _, v := range x {
			xSet[v] = true
		}
		for _, v := range cand {
			var p2, x2 []int
			for n := range adj[v] {
				if pSet[n] {
					p2 = append(p2, n)
				}
				if xSet[n] {
					x2 = append(x2, n)
				}
			}
			sort.Ints(p2)
			sort.Ints(x2)
			bk(append(r, v), p2, x2)
			delete(pSet, v)
			xSet[v] = true
		}
	}
	bk(nil, all, nil)
	return out
}

func countIn(set map[int]bool, of []int) int {
	n := 0
	for _, v := range of {
		if set[v] {
			n++
		}
	}
	return n
}

// orderCompatible reports whether a and b occupy the same position in H's
// partial order: their ancestor sets and descendant sets agree once a and b
// themselves are ignored. Clusters of pairwise order-compatible nodes can
// never fabricate or lose order, which is what makes CompatibilityFilter
// enhancement always consistent.
func orderCompatible(h *ontology.Hierarchy, a, b string) bool {
	return setsEqualIgnoring(h.Above(a), h.Above(b), a, b) &&
		setsEqualIgnoring(h.Below(a), h.Below(b), a, b)
}

// setsEqualIgnoring compares two sorted string slices for equality after
// removing x and y from both.
func setsEqualIgnoring(s1, s2 []string, x, y string) bool {
	i, j := 0, 0
	for {
		for i < len(s1) && (s1[i] == x || s1[i] == y) {
			i++
		}
		for j < len(s2) && (s2[j] == x || s2[j] == y) {
			j++
		}
		if i == len(s1) || j == len(s2) {
			return i == len(s1) && j == len(s2)
		}
		if s1[i] != s2[j] {
			return false
		}
		i++
		j++
	}
}
