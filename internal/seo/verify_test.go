package seo

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/similarity"
)

func TestVerifyAcceptsSEAOutput(t *testing.T) {
	h := fig13Hierarchy()
	d := similarity.Levenshtein{}
	s, err := Enhance(h, d, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, d, 2, s, nil); err != nil {
		t.Fatalf("SEA output should verify: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	h := fig13Hierarchy()
	d := similarity.Levenshtein{}

	// Tampered cluster containing dissimilar terms violates condition (2).
	s, err := Enhance(h, d, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, members := range s.Clusters {
		if len(members) == 2 {
			s.Clusters[name] = append(members, "abstraction")
			s.Mu["abstraction"] = append(s.Mu["abstraction"], name)
			break
		}
	}
	if err := Verify(h, d, 2, s, nil); err == nil || !strings.Contains(err.Error(), "distance") {
		t.Errorf("expected a condition (2) violation, got %v", err)
	}

	// Removing a node from μ violates coverage.
	s2, _ := Enhance(h, d, 2, Options{})
	delete(s2.Mu, "abstraction")
	if err := Verify(h, d, 2, s2, nil); err == nil || !strings.Contains(err.Error(), "missing from mu") {
		t.Errorf("expected a coverage violation, got %v", err)
	}

	// Claiming a smaller eps than the clusters were built with violates (2).
	s3, _ := Enhance(h, d, 2, Options{})
	if err := Verify(h, d, 0, s3, nil); err == nil {
		t.Error("eps=0 should reject eps=2 clusters")
	}
}

// TestQuickVerifyAcceptsEnhance: Verify accepts whatever Enhance produces,
// in every construction mode, on random hierarchies.
func TestQuickVerifyAcceptsEnhance(t *testing.T) {
	d := similarity.Levenshtein{}
	f := func(seed int64, filtered bool) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomSEOHierarchy(rng, 3+rng.Intn(8))
		eps := float64(rng.Intn(3))
		s, err := Enhance(h, d, eps, Options{CompatibilityFilter: filtered, Relaxed: !filtered})
		if err != nil {
			return true // strict-mode inconsistency is allowed
		}
		if err := Verify(h, d, eps, s, nil); err != nil {
			t.Logf("seed %d filtered=%v: %v", seed, filtered, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestInconsistencyErrorMessage(t *testing.T) {
	err := &InconsistencyError{Reason: "because"}
	if !strings.Contains(err.Error(), "because") || !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestVerifyToleratesRelaxedDrops(t *testing.T) {
	// Build the inconsistent hierarchy; relaxed mode drops edges; Verify
	// must accept the result because the drops are recorded.
	h := fig13Hierarchy()
	h.MustAddEdge("cikm", "relation") // force order divergence for a merge
	d := similarity.Levenshtein{}
	s, err := Enhance(h, d, 2, Options{Relaxed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, d, 2, s, nil); err != nil {
		t.Fatalf("relaxed SEO with recorded drops should verify: %v", err)
	}
}

func TestNodeWithinMultiString(t *testing.T) {
	d := similarity.Levenshtein{}
	// Multi-string nodes take the min over pairs (no Lemma 1 shortcut).
	if !nodeWithin(d, []string{"booktitle", "conference"}, []string{"conferences"}, 1, false) {
		t.Error("min-over-pairs nodeWithin failed")
	}
	if nodeWithin(d, nil, []string{"x"}, 10, false) {
		t.Error("empty node is never within")
	}
	if !nodeWithin(d, []string{"aa", "zz"}, []string{"zz"}, 0, true) {
		t.Error("DisableLemma1 path failed")
	}
}
