package planner

import (
	"container/list"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/xmldb"
	"repro/internal/xpath"
)

// SelectPlan is the chosen execution strategy for one candidate-document
// pre-filter: the rewritten paths with their estimates, in the order the
// intersection should run (most selective first). Plans are immutable once
// built and safe to share across queries (they are cached).
type SelectPlan struct {
	Collection  string
	Generation  uint64
	TotalDocs   int
	AvgDocNodes float64
	// Paths holds the per-path estimates in chosen execution order;
	// Order[k] is the index of Paths[k] in the original rewrite order.
	Paths []PathEstimate
	Order []int
	// Reordered reports whether the chosen order differs from rewrite order.
	Reordered bool
	// EstCandidates is the estimated size of the final intersection, under
	// the usual attribute-independence assumption (corrected by learned
	// feedback factors on adaptive plans).
	EstCandidates float64
	// RawCandidates is the uncorrected intersection estimate. Feedback
	// corrections are learned against raw estimates — never against already
	// corrected ones — so factors cannot compound across generations of the
	// same plan.
	RawCandidates float64
	// CorrectionsApplied counts the feedback corrections folded into this
	// plan's estimates (0 on non-adaptive plans); FeedbackEpoch is the
	// correction epoch the plan was built under.
	CorrectionsApplied int
	FeedbackEpoch      uint64
}

// BuildSelectPlan estimates every rewritten path against the statistics
// snapshot and orders the intersection most-selective-first.
func BuildSelectPlan(collection string, st *xmldb.Stats, paths []*xpath.Path) *SelectPlan {
	plan := &SelectPlan{
		Collection:  collection,
		Generation:  st.Generation,
		TotalDocs:   st.Docs,
		AvgDocNodes: st.AvgNodesPerDoc(),
	}
	ests := make([]PathEstimate, len(paths))
	for i, p := range paths {
		ests[i] = EstimatePath(st, p)
	}
	order := make([]int, len(paths))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := ests[order[a]], ests[order[b]]
		if ea.EstDocs != eb.EstDocs {
			return ea.EstDocs < eb.EstDocs
		}
		return ea.Cost < eb.Cost
	})
	plan.Order = order
	plan.Paths = make([]PathEstimate, len(order))
	sel := 1.0
	docs := float64(st.Docs)
	for k, idx := range order {
		plan.Paths[k] = ests[idx]
		if idx != k {
			plan.Reordered = true
		}
		if docs > 0 {
			sel *= ests[idx].EstDocs / docs
		}
	}
	if docs > 0 {
		plan.EstCandidates = sel * docs
	}
	plan.RawCandidates = plan.EstCandidates
	return plan
}

// RestrictedCost estimates evaluating one path directly over the surviving
// documents (a per-document walk) instead of querying the whole collection.
func (pl *SelectPlan) RestrictedCost(survivors int) float64 {
	return float64(survivors) * pl.AvgDocNodes * CostScanNode
}

// ShouldRestrict reports whether the k-th planned path is estimated cheaper
// to evaluate per-document over the current survivors than via its chosen
// collection-wide access method. Only meaningful for k > 0.
func (pl *SelectPlan) ShouldRestrict(k, survivors int) bool {
	if k <= 0 || k >= len(pl.Paths) {
		return false
	}
	return pl.RestrictedCost(survivors) < pl.Paths[k].Cost
}

// JoinPlan is the chosen strategy for one similarity hash join: which side
// builds the hash table (the side with fewer estimated key entries) and the
// estimates that drove the choice.
type JoinPlan struct {
	BuildLeft bool
	EstLeft   float64 // estimated hash entries if the left side builds
	EstRight  float64 // estimated hash entries if the right side builds
	LeftDocs  int
	RightDocs int
}

// PlanJoinSides chooses the build side of a hash join from the candidate
// document counts and the per-collection average of content-bearing nodes
// per document (each content node contributes hash keys).
func PlanJoinSides(lst, rst *xmldb.Stats, ldocs, rdocs int) *JoinPlan {
	jp := &JoinPlan{
		EstLeft:   hashEntries(lst, ldocs),
		EstRight:  hashEntries(rst, rdocs),
		LeftDocs:  ldocs,
		RightDocs: rdocs,
	}
	jp.BuildLeft = jp.EstLeft <= jp.EstRight
	return jp
}

func hashEntries(st *xmldb.Stats, docs int) float64 {
	if st == nil || st.Docs == 0 {
		return float64(docs)
	}
	valueNodes := 0
	for _, ts := range st.Tags {
		valueNodes += ts.ValueNodes
	}
	return float64(docs) * float64(valueNodes) / float64(st.Docs)
}

// Counters is a point-in-time snapshot of the planner's activity, exported
// on /statz and /metrics.
type Counters struct {
	PlansBuilt   uint64 `json:"plans_built"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheSize    int    `json:"cache_size"`
	Observations uint64 `json:"observations"`
	// Relative estimation-error quantiles (|est-actual| / max(actual,1))
	// over a sliding window of recent observations.
	ErrP50 float64 `json:"err_p50"`
	ErrP90 float64 `json:"err_p90"`
	ErrMax float64 `json:"err_max"`

	// Adaptive-execution feedback (docs/PLANNER.md §7).
	CorrectionsRecorded uint64 `json:"corrections_recorded"`
	CorrectionsApplied  uint64 `json:"corrections_applied"`
	CorrectionEpoch     uint64 `json:"correction_epoch"`
	FeedbackEntries     int    `json:"feedback_entries"`
	EpochInvalidations  uint64 `json:"epoch_invalidations"`
	ReoptMaterialize    uint64 `json:"reopt_materialize"`
	ReoptBuildSide      uint64 `json:"reopt_build_side"`
	// Auto-tuned gate positions (seeded from the package constants).
	TunedMinParallelDocs    int     `json:"tuned_min_parallel_docs"`
	TunedMinStreamScanDocs  int     `json:"tuned_min_stream_scan_docs"`
	TunedSimTermSelectivity float64 `json:"tuned_sim_term_selectivity"`
}

// Planner builds, caches, and scores query plans. Safe for concurrent use;
// one Planner is shared by every instance of a core.System.
type Planner struct {
	plansBuilt atomic.Uint64
	hits       atomic.Uint64
	misses     atomic.Uint64

	mu    sync.Mutex
	cache map[string]*list.Element
	order *list.List // front = most recently used
	cap   int

	errs errorWindow

	// sim holds the similarity-index gate override (simplan.go).
	sim simGate

	// fb is the adaptive-execution correction store (feedback.go); tun
	// holds the auto-tuned execution gates (tunables.go).
	fb              *Feedback
	tun             tunables
	epochInvalidate atomic.Uint64
}

type cacheEntry struct {
	key string
	// epoch is the correction epoch the plan was built under; adaptive
	// lookups treat a stale epoch as a miss. Static plans are built from raw
	// estimates only and live under unprefixed keys (adaptive keys carry an
	// "a\x00" prefix), so the two never serve each other's entries.
	epoch uint64
	plan  *SelectPlan
}

// DefaultCacheSize bounds the plan cache when New is given size <= 0.
const DefaultCacheSize = 256

// New returns a Planner with an LRU plan cache of the given capacity.
func New(cacheSize int) *Planner {
	if cacheSize <= 0 {
		cacheSize = DefaultCacheSize
	}
	return &Planner{
		cache: make(map[string]*list.Element, cacheSize),
		order: list.New(),
		cap:   cacheSize,
		fb:    NewFeedback(0),
	}
}

// PlanSelect returns the plan for intersecting the given rewritten paths on
// the collection, consulting the plan cache first. The cache key is the
// canonical path strings (deterministically derived from the normalized
// pattern) plus the collection's mutation generation and the ontology
// snapshot version the query pinned (paths are rewritten against the SEO, so
// an ontology mutation changes them the same way a data mutation does) —
// plans invalidate by key construction exactly like the server's result
// cache. The second return reports whether the plan came from the cache.
func (pl *Planner) PlanSelect(col *xmldb.Collection, ontologyVersion uint64, paths []*xpath.Path) (*SelectPlan, bool) {
	st := col.Stats()
	key := selectCacheKey("", col.Name(), st.Generation, ontologyVersion, paths)
	if plan, ok := pl.cacheGet(key, 0, false); ok {
		return plan, true
	}
	plan := BuildSelectPlan(col.Name(), st, paths)
	pl.plansBuilt.Add(1)
	pl.cachePut(key, 0, plan)
	return plan, false
}

// PlanSelectAdaptive is PlanSelect with learned feedback folded in: per-path
// and whole-plan correction factors multiply through the raw estimates, the
// intersection order is re-sorted on the corrected cardinalities, and the
// cached plan remembers the correction epoch it was built under — a material
// correction move (epoch bump) invalidates it on the next lookup. Adaptive
// plans live under their own key prefix, so static (`-no-adaptive`) queries
// never see corrected estimates.
func (pl *Planner) PlanSelectAdaptive(col *xmldb.Collection, ontologyVersion uint64, paths []*xpath.Path) (*SelectPlan, bool) {
	st := col.Stats()
	epoch := pl.fb.Epoch()
	key := selectCacheKey("a\x00", col.Name(), st.Generation, ontologyVersion, paths)
	if plan, ok := pl.cacheGet(key, epoch, true); ok {
		return plan, true
	}
	plan := pl.buildAdaptiveSelectPlan(col.Name(), st, ontologyVersion, paths)
	plan.FeedbackEpoch = epoch
	pl.plansBuilt.Add(1)
	pl.cachePut(key, epoch, plan)
	return plan, false
}

func selectCacheKey(prefix, collection string, generation, ontologyVersion uint64, paths []*xpath.Path) string {
	var sb strings.Builder
	sb.WriteString(prefix)
	fmt.Fprintf(&sb, "%s@%d#%d", collection, generation, ontologyVersion)
	for _, p := range paths {
		sb.WriteByte(0)
		sb.WriteString(p.String())
	}
	return sb.String()
}

// cacheGet looks key up in the plan cache. When epochAware, an entry built
// under a different correction epoch is evicted and reported as a miss.
func (pl *Planner) cacheGet(key string, wantEpoch uint64, epochAware bool) (*SelectPlan, bool) {
	pl.mu.Lock()
	el, ok := pl.cache[key]
	if !ok {
		pl.mu.Unlock()
		pl.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if epochAware && ent.epoch != wantEpoch {
		pl.order.Remove(el)
		delete(pl.cache, key)
		pl.mu.Unlock()
		pl.misses.Add(1)
		pl.epochInvalidate.Add(1)
		return nil, false
	}
	pl.order.MoveToFront(el)
	plan := ent.plan
	pl.mu.Unlock()
	pl.hits.Add(1)
	return plan, true
}

func (pl *Planner) cachePut(key string, epoch uint64, plan *SelectPlan) {
	pl.mu.Lock()
	if _, ok := pl.cache[key]; !ok {
		pl.cache[key] = pl.order.PushFront(&cacheEntry{key: key, epoch: epoch, plan: plan})
		for pl.order.Len() > pl.cap {
			old := pl.order.Back()
			pl.order.Remove(old)
			delete(pl.cache, old.Value.(*cacheEntry).key)
		}
	}
	pl.mu.Unlock()
}

// buildAdaptiveSelectPlan builds the raw plan and multiplies learned
// corrections through it. Corrections always apply to raw estimates
// (PathEstimate.RawDocs, SelectPlan.RawCandidates) so a factor re-applied on
// every rebuild cannot compound.
func (pl *Planner) buildAdaptiveSelectPlan(collection string, st *xmldb.Stats, ontologyVersion uint64, paths []*xpath.Path) *SelectPlan {
	plan := BuildSelectPlan(collection, st, paths)
	if pl.fb == nil || len(plan.Paths) == 0 {
		return plan
	}
	docs := float64(st.Docs)
	applied := 0
	for i := range plan.Paths {
		est := &plan.Paths[i]
		k := FeedbackKey(collection, st.Generation, ontologyVersion, PathShape(est.XPath))
		if c, ok := pl.fb.Correct(k, est.RawDocs); ok {
			if c > docs {
				c = docs
			}
			est.EstDocs = c
			est.EstShards = ShardsFromDocs(c, st.Shards)
			applied++
		}
	}
	// Re-sort the intersection on the corrected cardinalities: a path the
	// statistics called selective but feedback proved fat should run late.
	idx := make([]int, len(plan.Paths))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := plan.Paths[idx[a]], plan.Paths[idx[b]]
		if ea.EstDocs != eb.EstDocs {
			return ea.EstDocs < eb.EstDocs
		}
		return ea.Cost < eb.Cost
	})
	newPaths := make([]PathEstimate, len(idx))
	newOrder := make([]int, len(idx))
	reordered := false
	for i, j := range idx {
		newPaths[i] = plan.Paths[j]
		newOrder[i] = plan.Order[j]
		if newOrder[i] != i {
			reordered = true
		}
	}
	plan.Paths, plan.Order, plan.Reordered = newPaths, newOrder, reordered
	if docs > 0 {
		sel := 1.0
		for i := range plan.Paths {
			sel *= plan.Paths[i].EstDocs / docs
		}
		plan.EstCandidates = sel * docs
	}
	// The whole-plan correction — learned from completed intersections —
	// overrides the independence product entirely: correlation between paths
	// is exactly what the product cannot see and the actuals can.
	k := FeedbackKey(collection, st.Generation, ontologyVersion, SelectShape(paths))
	if c, ok := pl.fb.Correct(k, plan.RawCandidates); ok {
		if c > docs {
			c = docs
		}
		plan.EstCandidates = c
		applied++
	}
	plan.CorrectionsApplied = applied
	return plan
}

// Learn records one raw-estimate-versus-actual observation in the
// correction store. Callers pass the RAW (uncorrected) estimate; the
// corrected estimate belongs in Observe, where the error quantiles measure
// how well corrections are working.
func (pl *Planner) Learn(key string, rawEst, actual float64) {
	if pl == nil {
		return
	}
	pl.fb.Record(key, rawEst, actual)
}

// Correction multiplies rawEst through the learned factor for key, if any.
func (pl *Planner) Correction(key string, rawEst float64) (float64, bool) {
	if pl == nil {
		return rawEst, false
	}
	return pl.fb.Correct(key, rawEst)
}

// FeedbackEpoch returns the correction store's current epoch.
func (pl *Planner) FeedbackEpoch() uint64 {
	if pl == nil {
		return 0
	}
	return pl.fb.Epoch()
}

// Observe records one estimated-versus-actual cardinality pair, feeding the
// estimation-error quantiles.
func (pl *Planner) Observe(est, actual float64) {
	denom := actual
	if denom < 1 {
		denom = 1
	}
	pl.errs.record(math.Abs(est-actual) / denom)
}

// Counters snapshots the planner's activity.
func (pl *Planner) Counters() Counters {
	c := Counters{
		PlansBuilt:  pl.plansBuilt.Load(),
		CacheHits:   pl.hits.Load(),
		CacheMisses: pl.misses.Load(),
	}
	pl.mu.Lock()
	c.CacheSize = pl.order.Len()
	pl.mu.Unlock()
	c.Observations, c.ErrP50, c.ErrP90, c.ErrMax = pl.errs.quantiles()
	c.CorrectionsRecorded, c.CorrectionsApplied, c.CorrectionEpoch, c.FeedbackEntries = pl.fb.counters()
	c.EpochInvalidations = pl.epochInvalidate.Load()
	c.ReoptMaterialize = pl.tun.reoptMaterialize.Load()
	c.ReoptBuildSide = pl.tun.reoptBuildSide.Load()
	c.TunedMinParallelDocs = pl.MinParallelDocsGate()
	c.TunedMinStreamScanDocs = pl.MinStreamScanDocsGate()
	c.TunedSimTermSelectivity = pl.SimTermSelectivityGate()
	return c
}

// errorWindow keeps the last errWindowSize relative errors in a ring and
// reports quantiles over the window.
const errWindowSize = 512

type errorWindow struct {
	mu    sync.Mutex
	ring  [errWindowSize]float64
	next  int
	count uint64
}

func (w *errorWindow) record(err float64) {
	w.mu.Lock()
	w.ring[w.next] = err
	w.next = (w.next + 1) % errWindowSize
	w.count++
	w.mu.Unlock()
}

func (w *errorWindow) quantiles() (count uint64, p50, p90, max float64) {
	w.mu.Lock()
	count = w.count
	n := int(count)
	if n > errWindowSize {
		n = errWindowSize
	}
	buf := make([]float64, n)
	copy(buf, w.ring[:n])
	w.mu.Unlock()
	if n == 0 {
		return count, 0, 0, 0
	}
	sort.Float64s(buf)
	p50 = buf[(n-1)*50/100]
	p90 = buf[(n-1)*90/100]
	max = buf[n-1]
	return count, p50, p90, max
}
