package planner

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/xpath"
)

// Feedback is the planner's correction store: per-(collection, pattern-shape)
// multiplicative correction factors learned from completed queries'
// estimated-versus-actual cardinality rows. Keys embed the collection's
// mutation generation and the pinned ontology snapshot version — the same
// scheme as the plan cache — so a data write or live ontology mutation
// resets the corrections for the affected collection by key construction:
// stale factors are simply never looked up again and age out of the LRU.
//
// Factors decay exponentially (each new observation carries CorrectionDecay
// of the weight), so a drifting workload is tracked instead of averaged
// away. A material factor move bumps the store's epoch, which invalidates
// adaptive plan-cache entries built under older corrections.
type Feedback struct {
	mu    sync.Mutex
	cache map[string]*list.Element
	order *list.List // front = most recently used
	cap   int

	epoch    atomic.Uint64
	recorded atomic.Uint64
	applied  atomic.Uint64
}

type correction struct {
	key    string
	factor float64
}

const (
	// DefaultFeedbackSize bounds the correction store (same order as the
	// plan cache: one entry per distinct pattern shape per generation).
	DefaultFeedbackSize = 512

	// CorrectionDecay is the weight of the newest observation in the
	// exponentially decayed factor: high enough to track drift within a few
	// queries, low enough that one outlier row does not whipsaw plans.
	CorrectionDecay = 0.5

	// Correction factors are clamped to [1/CorrectionClamp, CorrectionClamp]
	// so a zero-actual observation cannot zero an estimate forever.
	CorrectionClamp = 64.0

	// CorrectionEpochStep is the relative factor move that counts as
	// material and bumps the epoch (invalidating adaptive cached plans).
	CorrectionEpochStep = 0.5
)

// NewFeedback returns a correction store with an LRU bound of the given
// capacity (<= 0 selects DefaultFeedbackSize).
func NewFeedback(capacity int) *Feedback {
	if capacity <= 0 {
		capacity = DefaultFeedbackSize
	}
	return &Feedback{
		cache: make(map[string]*list.Element, capacity),
		order: list.New(),
		cap:   capacity,
	}
}

// FeedbackKey builds a correction key. It mirrors the plan-cache key —
// collection name, mutation generation, ontology snapshot version — plus the
// pattern shape the correction applies to, so invalidation on writes and
// ontology mutations is by key construction.
func FeedbackKey(collection string, generation, ontologyVersion uint64, shape string) string {
	return fmt.Sprintf("%s@%d#%d|%s", collection, generation, ontologyVersion, shape)
}

// PathShape is the shape string for one rewritten pre-filter path.
func PathShape(xp string) string { return "path|" + xp }

// SelectShape is the shape string for a whole selection pre-filter (the
// final intersection cardinality across all paths).
func SelectShape(paths []*xpath.Path) string {
	shape := "select"
	for _, p := range paths {
		shape += "\x00" + p.String()
	}
	return shape
}

// SimShape is the shape string for a similarity-probe source operator.
func SimShape(tag, literal string) string { return "simprobe|" + tag + "|" + literal }

// Record folds one estimated-versus-actual observation into the correction
// factor for key. The observed ratio actual/est is clamped and blended into
// the existing factor with exponential decay; a material move bumps the
// epoch.
func (f *Feedback) Record(key string, est, actual float64) {
	if f == nil {
		return
	}
	if est < 0.5 {
		est = 0.5 // floor: a sub-one estimate observing 1 actual is ~2x off, not 1000x
	}
	if actual < 0 {
		actual = 0
	}
	ratio := actual / est
	if ratio < 1/CorrectionClamp {
		ratio = 1 / CorrectionClamp
	}
	if ratio > CorrectionClamp {
		ratio = CorrectionClamp
	}
	f.recorded.Add(1)

	f.mu.Lock()
	old := 1.0 // an absent entry behaves like factor 1 (no correction)
	if el, ok := f.cache[key]; ok {
		c := el.Value.(*correction)
		old = c.factor
		c.factor = old*(1-CorrectionDecay) + ratio*CorrectionDecay
		f.order.MoveToFront(el)
	} else {
		f.cache[key] = f.order.PushFront(&correction{key: key, factor: ratio})
		for f.order.Len() > f.cap {
			back := f.order.Back()
			f.order.Remove(back)
			delete(f.cache, back.Value.(*correction).key)
		}
	}
	now := f.cache[key].Value.(*correction).factor
	f.mu.Unlock()

	if math.Abs(now-old)/old >= CorrectionEpochStep {
		f.epoch.Add(1)
	}
}

// Correct multiplies est through the correction factor for key, if one has
// been learned. fired reports whether a correction applied.
func (f *Feedback) Correct(key string, est float64) (corrected float64, fired bool) {
	if f == nil {
		return est, false
	}
	f.mu.Lock()
	el, ok := f.cache[key]
	if !ok {
		f.mu.Unlock()
		return est, false
	}
	f.order.MoveToFront(el)
	factor := el.Value.(*correction).factor
	f.mu.Unlock()
	f.applied.Add(1)
	return est * factor, true
}

// Factor returns the learned correction factor for key (1 when absent),
// without touching LRU order or counters. Observability only.
func (f *Feedback) Factor(key string) float64 {
	if f == nil {
		return 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if el, ok := f.cache[key]; ok {
		return el.Value.(*correction).factor
	}
	return 1
}

// Epoch returns the current correction epoch. Adaptive cached plans remember
// the epoch they were built under; a mismatch on lookup forces a rebuild.
func (f *Feedback) Epoch() uint64 {
	if f == nil {
		return 0
	}
	return f.epoch.Load()
}

// Len reports the live correction entries.
func (f *Feedback) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.order.Len()
}

func (f *Feedback) counters() (recorded, applied, epoch uint64, entries int) {
	if f == nil {
		return 0, 0, 0, 0
	}
	return f.recorded.Load(), f.applied.Load(), f.epoch.Load(), f.Len()
}
