package planner

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmldb"
	"repro/internal/xpath"
)

func streamTestStats(t *testing.T, docs int) *xmldb.Stats {
	t.Helper()
	db := xmldb.New()
	col := db.CreateCollection("c")
	for i := 0; i < docs; i++ {
		tag := "common"
		if i%50 == 0 {
			tag = "rare"
		}
		xml := fmt.Sprintf("<paper><%s>v%d</%s></paper>", tag, i, tag)
		if _, err := col.PutXML(fmt.Sprintf("d%04d", i), strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	return col.Stats()
}

func mustPath(t *testing.T, expr string) *xpath.Path {
	t.Helper()
	p, err := xpath.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanStreamScanNoLimit(t *testing.T) {
	st := streamTestStats(t, 200)
	d := PlanStreamScan(st, []*xpath.Path{mustPath(t, "//paper")}, 0)
	if d.Stream {
		t.Fatal("stream scan chosen without a limit")
	}
}

func TestPlanStreamScanTinyCollection(t *testing.T) {
	st := streamTestStats(t, MinStreamScanDocs-1)
	d := PlanStreamScan(st, []*xpath.Path{mustPath(t, "//paper")}, 5)
	if d.Stream {
		t.Fatalf("stream scan chosen for %d docs, below MinStreamScanDocs=%d",
			st.Docs, MinStreamScanDocs)
	}
}

func TestPlanStreamScanSelectivePathPrefersStream(t *testing.T) {
	// Every doc matches //paper, so a limit-5 scan should stop after ~5 docs
	// while the materialized path pays the full index probe or scan.
	st := streamTestStats(t, 500)
	d := PlanStreamScan(st, []*xpath.Path{mustPath(t, "//paper")}, 5)
	if !d.Stream {
		t.Fatalf("expected stream scan for a match-everything path: %+v", d)
	}
	if d.EstScanDocs > 50 {
		t.Fatalf("EstScanDocs=%.1f, expected a small scan prefix", d.EstScanDocs)
	}
}

func TestPlanStreamScanRarePathPrefersMaterialized(t *testing.T) {
	// Only 1 in 50 docs has <rare>, so the scan prefix before 5 answers is
	// ~250 full-document walks; the tag index answers in a handful of probes.
	st := streamTestStats(t, 500)
	d := PlanStreamScan(st, []*xpath.Path{mustPath(t, "//rare")}, 5)
	if d.Stream {
		t.Fatalf("expected materialized path for a rare tag: %+v", d)
	}
	if d.EstScanDocs < 100 {
		t.Fatalf("EstScanDocs=%.1f, expected a long scan prefix for a rare tag", d.EstScanDocs)
	}
}

func TestPlanStreamScanNoPaths(t *testing.T) {
	st := streamTestStats(t, 500)
	d := PlanStreamScan(st, nil, 5)
	if !d.Stream {
		t.Fatal("pattern with no pre-filter paths should always stream under a limit")
	}
}

func TestHeuristicStreamScan(t *testing.T) {
	if HeuristicStreamScan(1000, 0) {
		t.Fatal("heuristic streams without a limit")
	}
	if HeuristicStreamScan(MinStreamScanDocs-1, 5) {
		t.Fatal("heuristic streams a tiny collection")
	}
	if !HeuristicStreamScan(MinStreamScanDocs, 5) {
		t.Fatal("heuristic refuses a large limited query")
	}
}
