// Package planner is the cost-based query planner for the TOSS algebra. It
// consumes the per-collection statistics xmldb maintains (tag and value
// frequencies, document counts, mutation generations) and turns them into
// execution decisions the Query Executor previously made by fixed heuristics:
// the order candidate-set intersections run in, index-scan versus full-scan
// routing per rewritten XPath path, whether a later intersection stage should
// be evaluated per-document over the current survivors, and which side of a
// similarity hash join builds the hash table. Plans are cached per
// (collection generation, rewritten paths) and estimated-versus-actual
// cardinalities are recorded so the estimation error is observable.
package planner

import (
	"math"

	"repro/internal/xmldb"
	"repro/internal/xpath"
)

// Cost model constants, in abstract units of "one node visited during a
// document walk". They only need to be right relative to each other.
const (
	// CostScanNode is the cost of visiting one node during a full scan.
	CostScanNode = 1.0
	// CostIndexProbe is the cost of testing one tag-index candidate with
	// MatchesUp (an ancestor-chain walk plus predicate evaluation) — several
	// times a plain scan visit.
	CostIndexProbe = 4.0
	// MinParallelDocs is the candidate-document count below which forking
	// parallel evaluation workers costs more than it saves.
	MinParallelDocs = 4
)

// Default selectivities for conditions the estimator cannot decompose.
const (
	// DefaultPredSelectivity is assumed for an XPath predicate that is not a
	// self-equality (or disjunction of them) the value sketch can estimate.
	DefaultPredSelectivity = 1.0 / 3
	// DefaultOntologySelectivity is assumed for isa/part_of/below/above
	// conditions, whose reachable term sets are not enumerated.
	DefaultOntologySelectivity = 0.25
	// DefaultContainsSelectivity is assumed for substring containment.
	DefaultContainsSelectivity = 0.1
)

// Access methods a plan can choose per path.
const (
	AccessIndex      = "index"       // bottom-up through the tag index
	AccessValueIndex = "index+value" // tag index narrowed by the value index
	AccessScan       = "scan"        // full document walk
	AccessRestricted = "restricted"  // per-document eval over current survivors
)

// PathEstimate is the planner's verdict on one rewritten XPath path: the
// access method chosen by cost, the estimated matching cardinalities, and
// the estimated evaluation cost.
type PathEstimate struct {
	XPath    string
	Tag      string  // driving tag of the final step ("" when wildcard)
	Access   string  // chosen access method (AccessIndex, AccessValueIndex, AccessScan)
	EstNodes float64 // estimated matching nodes
	EstDocs  float64 // estimated documents containing a match
	// RawDocs preserves the uncorrected statistics-only document estimate:
	// adaptive planning overwrites EstDocs with a corrected value but always
	// learns and re-applies corrections against RawDocs, so factors cannot
	// compound across plan rebuilds.
	RawDocs float64
	// EstShards is the estimated number of shards holding at least one
	// matching document (1 on unsharded collections). Highly selective paths
	// estimate close to 1: the gather stage expects to touch only the owning
	// shard(s) of the few matching documents.
	EstShards float64
	Cost      float64 // estimated evaluation cost (model units)
}

// EstimatePath estimates one rewritten XPath path against a statistics
// snapshot, choosing the cheaper of index probing and full scanning.
func EstimatePath(st *xmldb.Stats, p *xpath.Path) PathEstimate {
	est := PathEstimate{XPath: p.String()}
	last := p.Steps[len(p.Steps)-1]
	scanCost := float64(st.Nodes) * CostScanNode

	if last.Name == "*" || p.HasInnerPredicates() {
		// The indexed evaluator cannot route this shape; it always scans.
		est.Access = AccessScan
		est.Cost = scanCost
		if last.Name != "*" {
			ts := st.TagEstimate(last.Name)
			est.Tag = last.Name
			est.EstNodes = predSelectivity(ts, last.Preds) * float64(ts.Nodes)
			est.EstDocs = DocsFromNodes(est.EstNodes, ts.Docs)
		} else {
			est.EstNodes = float64(st.Nodes) * DefaultPredSelectivity
			est.EstDocs = float64(st.Docs) * DefaultPredSelectivity
		}
		est.EstShards = ShardsFromDocs(est.EstDocs, st.Shards)
		est.RawDocs = est.EstDocs
		return est
	}

	ts := st.TagEstimate(last.Name)
	est.Tag = last.Name
	est.Access = AccessIndex
	probes := float64(ts.Nodes) // candidates tested by MatchesUp

	preds := last.Preds
	matching := float64(ts.Nodes)
	if len(preds) > 0 {
		if lits, ok := xpath.SelfEqualsAnyLiteral(preds[0]); ok {
			matching = 0
			usable := !ts.Mixed
			for _, lit := range lits {
				if lit == "" {
					usable = false
				}
				matching += ts.ValueCount(lit)
			}
			if matching > float64(ts.Nodes) {
				matching = float64(ts.Nodes)
			}
			// The executor narrows candidates through the value index under
			// the same conditions (non-mixed tag, non-empty literals).
			if usable && matching < probes {
				probes = matching
				est.Access = AccessValueIndex
			}
			preds = preds[1:]
		}
		for range preds {
			matching *= DefaultPredSelectivity
		}
	}
	est.EstNodes = matching
	est.EstDocs = DocsFromNodes(matching, ts.Docs)
	// When every node of the tag matches, the per-tag doc count is exact —
	// no need for the balls-in-bins approximation.
	if matching >= float64(ts.Nodes) {
		est.EstDocs = float64(ts.Docs)
	}
	est.Cost = probes * CostIndexProbe
	// A huge posting list can cost more to probe than one walk over every
	// document; route such paths through the scan evaluator.
	if est.Cost > scanCost {
		est.Access = AccessScan
		est.Cost = scanCost
	}
	est.EstShards = ShardsFromDocs(est.EstDocs, st.Shards)
	est.RawDocs = est.EstDocs
	return est
}

// ShardsFromDocs estimates how many of a collection's shards hold at least
// one of the estimated matching documents — balls-in-bins again, with
// documents as balls and shards as bins (keys hash uniformly). A selective
// plan estimating ~1 shard tells the executor the scatter stage will gather
// from the owning shard only; an unsharded collection always estimates 1.
func ShardsFromDocs(docs float64, shards int) float64 {
	if shards <= 1 {
		return 1
	}
	if docs <= 0 {
		return 0
	}
	s := float64(shards)
	est := s * (1 - math.Pow(1-1/s, docs))
	if est > s {
		est = s
	}
	return est
}

func predSelectivity(ts xmldb.TagStats, preds []xpath.Pred) float64 {
	sel := 1.0
	for range preds {
		sel *= DefaultPredSelectivity
	}
	return sel
}

// DocsFromNodes converts an estimated matching-node count into an estimated
// matching-document count with the classic balls-in-bins expectation:
// matches spread uniformly over the docs that contain the tag.
func DocsFromNodes(nodes float64, docs int) float64 {
	if docs <= 0 || nodes <= 0 {
		return 0
	}
	d := float64(docs)
	est := d * (1 - math.Pow(1-1/d, nodes))
	if est > d {
		est = d
	}
	return est
}

// CondEstimate estimates how many nodes carrying the given tag satisfy a
// single condition. op is the pattern operator spelling ("=", "!=", "~",
// "contains", "isa", "part_of", "below", "above"); literals carries the
// value operand — for ~ and isa conditions the caller passes the full SEO
// cluster expansion, so the cluster size drives the estimate. A tag of "*"
// estimates over every node.
func CondEstimate(st *xmldb.Stats, tag, op string, literals []string) float64 {
	var ts xmldb.TagStats
	if tag == "*" {
		// Synthesize an aggregate "any tag" view.
		for _, t := range st.Tags {
			ts.Nodes += t.Nodes
			ts.ValueNodes += t.ValueNodes
			ts.DistinctValues += t.DistinctValues
		}
		ts.Mixed = true
	} else {
		ts = st.TagEstimate(tag)
	}
	nodes := float64(ts.Nodes)
	switch op {
	case "=", "~":
		if len(literals) == 0 || ts.Mixed {
			return nodes * DefaultPredSelectivity
		}
		var sum float64
		for _, lit := range literals {
			sum += ts.ValueCount(lit)
		}
		if sum > nodes {
			sum = nodes
		}
		return sum
	case "!=":
		if len(literals) == 0 || ts.Mixed {
			return nodes
		}
		var sum float64
		for _, lit := range literals {
			sum += ts.ValueCount(lit)
		}
		if sum > nodes {
			sum = nodes
		}
		return nodes - sum
	case "contains":
		return nodes * DefaultContainsSelectivity
	case "isa", "part_of", "below", "above", "instance_of", "subtype_of":
		return nodes * DefaultOntologySelectivity
	default:
		return nodes * DefaultPredSelectivity
	}
}
