package planner

import (
	"sync/atomic"

	"repro/internal/xmldb"
)

// AccessSimIndex marks a plan step answered by the similarity candidate
// index (internal/simindex): n-gram/phonetic filter, measure verification,
// value-index postings — no document scan.
const AccessSimIndex = "simindex"

const (
	// MinSimIndexDocs gates the simindex access path: below it a scan is
	// effectively free and the probe's fixed costs (filter merge, verifier
	// calls) are not worth paying. Override per Planner with
	// SetMinSimIndexDocs (tests and tossd -min-simindex-docs).
	MinSimIndexDocs = 64

	// CostSimVerify is one thresholded edit-distance verification of a
	// candidate term (banded DP, a handful of short rows).
	CostSimVerify = 6.0

	// CostSimGram is visiting one n-gram posting entry during the count
	// filter merge.
	CostSimGram = 0.1

	// DefaultSimTermSelectivity estimates the fraction of the distinct-term
	// dictionary surviving the n-gram/phonetic filter when nothing better is
	// known. Deliberately pessimistic; Observe feeds actuals back into the
	// planner's error window like every other estimate.
	DefaultSimTermSelectivity = 1.0 / 32
)

// SimDecision is the costed verdict on routing one `~` predicate through the
// similarity candidate index instead of a cluster-expansion or full scan.
type SimDecision struct {
	UseIndex bool
	Reason   string // "ok", "min-docs", or "alt-cheaper"

	EstCandidateTerms float64 // filter-channel terms expected to need verification
	EstNodes          float64 // value-index postings expected across matched terms
	EstDocs           float64 // candidate documents expected
	// RawDocs is the uncorrected candidate-document estimate — what feedback
	// corrections are learned against (see SelectPlan.RawCandidates).
	RawDocs   float64
	ProbeCost float64
	AltCost   float64 // best non-simindex alternative for this predicate
	// Corrections counts feedback corrections folded in (adaptive only).
	Corrections int
}

// PlanSimProbe costs a similarity probe for `tag.content ~ literal` against
// the collection statistics. clusterTerms is the size of the SEO expansion
// (the exact channel); soundExpansion reports whether the rewriter could
// compile that expansion into value-index equality probes itself — when it
// can, the alternative is those probes, not a full scan.
func PlanSimProbe(st *xmldb.Stats, tag string, clusterTerms int, soundExpansion bool, minDocs int) SimDecision {
	return planSimProbeWith(st, tag, clusterTerms, soundExpansion, minDocs, DefaultSimTermSelectivity)
}

// PlanSimProbeAdaptive is PlanSimProbe with learned feedback folded in: the
// term selectivity is the auto-tuned value ObserveSimProbe maintains from
// actual filter funnels, and the candidate-document estimate is multiplied
// through the correction factor learned from past probes of the same
// (tag, literal) shape.
func (pl *Planner) PlanSimProbeAdaptive(collection string, st *xmldb.Stats, ontologyVersion uint64, tag, literal string, clusterTerms int, soundExpansion bool) SimDecision {
	d := planSimProbeWith(st, tag, clusterTerms, soundExpansion, pl.MinSimIndexDocsGate(), pl.SimTermSelectivityGate())
	k := FeedbackKey(collection, st.Generation, ontologyVersion, SimShape(tag, literal))
	if c, ok := pl.Correction(k, d.RawDocs); ok {
		if docs := float64(st.Docs); c > docs {
			c = docs
		}
		d.EstDocs = c
		d.Corrections++
	}
	return d
}

func planSimProbeWith(st *xmldb.Stats, tag string, clusterTerms int, soundExpansion bool, minDocs int, termSel float64) SimDecision {
	if minDocs <= 0 {
		minDocs = MinSimIndexDocs
	}
	d := SimDecision{Reason: "ok"}
	ts := st.TagEstimate(tag)
	nodesPerValue := 1.0
	if ts.DistinctValues > 0 {
		nodesPerValue = float64(ts.ValueNodes) / float64(ts.DistinctValues)
	}
	d.EstCandidateTerms = float64(st.DistinctTerms) * termSel
	matched := float64(clusterTerms) + d.EstCandidateTerms
	d.EstNodes = matched * nodesPerValue
	if vn := float64(ts.ValueNodes); d.EstNodes > vn && vn > 0 {
		d.EstNodes = vn
	}
	d.EstDocs = DocsFromNodes(d.EstNodes, ts.Docs)
	d.RawDocs = d.EstDocs
	d.ProbeCost = float64(st.DistinctTerms)*CostSimGram +
		d.EstCandidateTerms*CostSimVerify +
		d.EstNodes*CostIndexProbe
	d.AltCost = float64(st.Nodes) * CostScanNode
	if soundExpansion {
		// The rewriter can serve the exact channel with value-index probes on
		// its own; the simindex only wins what the dynamic channel adds.
		expansion := float64(clusterTerms) * nodesPerValue * CostIndexProbe
		if expansion < d.AltCost {
			d.AltCost = expansion
		}
	}
	switch {
	case st.Docs < minDocs:
		d.Reason = "min-docs"
	case d.ProbeCost >= d.AltCost:
		d.Reason = "alt-cheaper"
	default:
		d.UseIndex = true
	}
	return d
}

// minSimDocs is the per-Planner override of MinSimIndexDocs (0 = default).
// It lives outside the struct literal so existing construction sites don't
// change; atomic because queries read it concurrently.
type simGate struct {
	minDocs atomic.Int64
}

// SetMinSimIndexDocs overrides the simindex document-count gate for plans
// built by this planner; n <= 0 restores the default.
func (p *Planner) SetMinSimIndexDocs(n int) {
	p.sim.minDocs.Store(int64(n))
}

// MinSimIndexDocsGate returns the effective simindex gate.
func (p *Planner) MinSimIndexDocsGate() int {
	if v := p.sim.minDocs.Load(); v > 0 {
		return int(v)
	}
	return MinSimIndexDocs
}
