package planner

import (
	"repro/internal/xmldb"
	"repro/internal/xpath"
)

// MinStreamScanDocs is the collection size below which limit pushdown never
// switches to the streaming shard scan: on tiny collections the materialized
// pre-filter is effectively free, and keeping the materialized path there
// also keeps small-collection limit traces identical to the historical
// SelectN output.
const MinStreamScanDocs = 32

// StreamDecision is the planner's verdict on executing a limited selection
// through the streaming shard-scan pipeline (scan documents in insertion
// order, filter each against the rewritten paths, stop once the limit is
// satisfied) instead of materializing the full candidate set first.
type StreamDecision struct {
	// Stream reports whether the streaming scan is estimated cheaper.
	Stream bool
	// EstCandidates is the estimated size of the full candidate set (the
	// usual attribute-independence product over the paths; corrected by
	// learned feedback factors on adaptive decisions).
	EstCandidates float64
	// RawCandidates is the uncorrected candidate estimate — what corrections
	// are learned against (see SelectPlan.RawCandidates).
	RawCandidates float64
	// Corrections counts feedback corrections folded into this decision
	// (always 0 on non-adaptive decisions).
	Corrections int
	// EstScanDocs is the estimated number of documents the streaming scan
	// pulls before the limit is satisfied (candidates spread uniformly over
	// insertion order).
	EstScanDocs float64
	// StreamCost and MaterializedCost are the competing estimates in the
	// planner's abstract cost units.
	StreamCost       float64
	MaterializedCost float64
}

// PlanStreamScan decides whether a selection with the given answer limit
// should run as a streaming shard scan. The streaming scan evaluates every
// rewritten path per document by walking it, so its cost is the expected
// scan prefix times the per-document walk cost; the materialized
// alternative pays every path's chosen access method over the whole
// collection before the first candidate is evaluated. Either way the
// answers are a prefix of the unlimited result, so the decision can only
// move work, never change it.
func PlanStreamScan(st *xmldb.Stats, paths []*xpath.Path, limit int) StreamDecision {
	d := StreamDecision{}
	if limit <= 0 || st == nil || st.Docs < MinStreamScanDocs {
		return d
	}
	docs := float64(st.Docs)
	sel := 1.0
	for _, p := range paths {
		est := EstimatePath(st, p)
		d.MaterializedCost += est.Cost
		if docs > 0 {
			sel *= est.EstDocs / docs
		}
	}
	d.EstCandidates = sel * docs
	d.RawCandidates = d.EstCandidates
	if d.EstCandidates < 1 {
		// Expecting no candidates at all: the streaming scan would walk the
		// whole collection to find out; budget for that.
		d.EstScanDocs = docs
	} else {
		d.EstScanDocs = float64(limit) / (d.EstCandidates / docs)
		if d.EstScanDocs > docs {
			d.EstScanDocs = docs
		}
	}
	perDoc := st.AvgNodesPerDoc() * CostScanNode
	nPaths := len(paths)
	if nPaths == 0 {
		nPaths = 1
	}
	d.StreamCost = d.EstScanDocs * perDoc * float64(nPaths)
	// A pattern that rewrote to no pre-filter paths makes every document a
	// candidate: the materialized path pays nothing up front, and streaming
	// from cursors is equally free — prefer it, since it also skips the
	// full-snapshot merge.
	if len(paths) == 0 {
		d.Stream = true
		d.StreamCost = 0
		return d
	}
	d.Stream = d.StreamCost < d.MaterializedCost
	return d
}

// HeuristicStreamScan is the planner-off fallback: stream when a limit is
// set and the collection is large enough that skipping the materialized
// pre-filter can pay for the per-document walks. Answers are identical
// either way.
func HeuristicStreamScan(docCount, limit int) bool {
	return limit > 0 && docCount >= MinStreamScanDocs
}

// PlanStreamScanAdaptive is PlanStreamScan with learned feedback folded in:
// the document-count gate is the auto-tuned MinStreamScanDocsGate, per-path
// and whole-plan correction factors multiply through the raw estimates, and
// the corrected candidate count drives the scan-prefix estimate. A learned
// low correlation (few real candidates) inflates EstScanDocs and flips the
// decision back to the materialized pre-filter — the feedback loop's answer
// to a drifted workload where streaming walks the whole collection.
func (pl *Planner) PlanStreamScanAdaptive(collection string, st *xmldb.Stats, ontologyVersion uint64, paths []*xpath.Path, limit int) StreamDecision {
	d := StreamDecision{}
	if limit <= 0 || st == nil || st.Docs < pl.MinStreamScanDocsGate() {
		return d
	}
	docs := float64(st.Docs)
	sel, rawSel := 1.0, 1.0
	for _, p := range paths {
		est := EstimatePath(st, p)
		d.MaterializedCost += est.Cost
		corrected := est.RawDocs
		k := FeedbackKey(collection, st.Generation, ontologyVersion, PathShape(est.XPath))
		if c, ok := pl.Correction(k, est.RawDocs); ok {
			if c > docs {
				c = docs
			}
			corrected = c
			d.Corrections++
		}
		if docs > 0 {
			sel *= corrected / docs
			rawSel *= est.RawDocs / docs
		}
	}
	d.EstCandidates = sel * docs
	d.RawCandidates = rawSel * docs
	k := FeedbackKey(collection, st.Generation, ontologyVersion, SelectShape(paths))
	if c, ok := pl.Correction(k, d.RawCandidates); ok {
		if c > docs {
			c = docs
		}
		d.EstCandidates = c
		d.Corrections++
	}
	if d.EstCandidates < 1 {
		d.EstScanDocs = docs
	} else {
		d.EstScanDocs = float64(limit) / (d.EstCandidates / docs)
		if d.EstScanDocs > docs {
			d.EstScanDocs = docs
		}
	}
	perDoc := st.AvgNodesPerDoc() * CostScanNode
	nPaths := len(paths)
	if nPaths == 0 {
		nPaths = 1
	}
	d.StreamCost = d.EstScanDocs * perDoc * float64(nPaths)
	if len(paths) == 0 {
		d.Stream = true
		d.StreamCost = 0
		return d
	}
	d.Stream = d.StreamCost < d.MaterializedCost
	return d
}
