package planner

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmldb"
	"repro/internal/xpath"
)

// skewedCollection holds many "common" papers and few "rare" ones, so path
// selectivities differ by an order of magnitude.
func skewedCollection(t testing.TB) *xmldb.Collection {
	t.Helper()
	db := xmldb.New()
	c := db.CreateCollection("skew")
	for i := 0; i < 40; i++ {
		author := "Common"
		if i < 2 {
			author = "Rare"
		}
		key := fmt.Sprintf("p%d", i)
		xml := fmt.Sprintf(`<paper><author>%s</author><title>T%d</title><year>2000</year></paper>`, author, i)
		if _, err := c.PutXML(key, strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestEstimatePathValueSelectivity(t *testing.T) {
	c := skewedCollection(t)
	st := c.Stats()

	rare := EstimatePath(st, xpath.MustParse(`//author[.="Rare"]`))
	common := EstimatePath(st, xpath.MustParse(`//author[.="Common"]`))
	if rare.EstDocs >= common.EstDocs {
		t.Fatalf("rare (%v docs) should estimate below common (%v docs)", rare.EstDocs, common.EstDocs)
	}
	if rare.Access != AccessValueIndex {
		t.Fatalf("rare value lookup should route through the value index, got %q", rare.Access)
	}
	if rare.EstNodes != 2 {
		t.Fatalf("rare EstNodes = %v, want exact sketch count 2", rare.EstNodes)
	}
	// An unconstrained frequent tag costs more to probe than to scan once
	// the posting list dominates: //paper covers 1/4 of all nodes (4 tags),
	// so index probing at 4x per candidate ties the scan; a plain tag query
	// stays on the index only while cheaper.
	bare := EstimatePath(st, xpath.MustParse(`//author`))
	if bare.Access == AccessValueIndex {
		t.Fatalf("no predicate, value index cannot apply: %q", bare.Access)
	}
	if bare.EstDocs != float64(st.Docs) {
		t.Fatalf("bare tag should match every doc, est %v", bare.EstDocs)
	}
}

func TestEstimatePathUnknownTagIsZero(t *testing.T) {
	c := skewedCollection(t)
	est := EstimatePath(c.Stats(), xpath.MustParse(`//nosuchtag`))
	if est.EstNodes != 0 || est.EstDocs != 0 {
		t.Fatalf("unknown tag: est %+v, want zero cardinality", est)
	}
}

func TestBuildSelectPlanOrdersMostSelectiveFirst(t *testing.T) {
	c := skewedCollection(t)
	paths := []*xpath.Path{
		xpath.MustParse(`//author`),           // matches all 40 docs
		xpath.MustParse(`//author[.="Rare"]`), // matches 2 docs
	}
	plan := BuildSelectPlan(c.Name(), c.Stats(), paths)
	if !plan.Reordered {
		t.Fatal("plan should reorder: rare path must run first")
	}
	if plan.Order[0] != 1 || plan.Order[1] != 0 {
		t.Fatalf("Order = %v, want [1 0]", plan.Order)
	}
	if plan.Paths[0].EstDocs > plan.Paths[1].EstDocs {
		t.Fatal("plan.Paths must be in chosen execution order")
	}
	if plan.EstCandidates <= 0 || plan.EstCandidates > 40 {
		t.Fatalf("EstCandidates = %v out of range", plan.EstCandidates)
	}
	// After the rare path leaves ~2 survivors, evaluating //author over the
	// survivors (2 docs × ~5 nodes) must beat a 40-candidate index probe.
	if !plan.ShouldRestrict(1, 2) {
		t.Fatalf("ShouldRestrict(1, 2) = false; restricted cost %v vs path cost %v",
			plan.RestrictedCost(2), plan.Paths[1].Cost)
	}
	if plan.ShouldRestrict(0, 2) {
		t.Fatal("first step can never be restricted")
	}
}

func TestPlanSelectCache(t *testing.T) {
	c := skewedCollection(t)
	pl := New(0)
	paths := []*xpath.Path{xpath.MustParse(`//author[.="Rare"]`)}

	p1, hit1 := pl.PlanSelect(c, 1, paths)
	if hit1 {
		t.Fatal("first plan cannot be a cache hit")
	}
	p2, hit2 := pl.PlanSelect(c, 1, paths)
	if !hit2 || p2 != p1 {
		t.Fatal("second identical plan should hit the cache")
	}
	// A mutation bumps the generation and must miss.
	if _, err := c.PutXML("new", strings.NewReader(`<paper><author>Rare</author></paper>`)); err != nil {
		t.Fatal(err)
	}
	_, hit3 := pl.PlanSelect(c, 1, paths)
	if hit3 {
		t.Fatal("plan for a new generation must miss the cache")
	}
	// An ontology version bump must miss too: the ontology rewrites the
	// paths, so its version is part of the key.
	_, hit4 := pl.PlanSelect(c, 2, paths)
	if hit4 {
		t.Fatal("plan for a new ontology version must miss the cache")
	}
	ctr := pl.Counters()
	if ctr.PlansBuilt != 3 || ctr.CacheHits != 1 || ctr.CacheMisses != 3 {
		t.Fatalf("counters = %+v", ctr)
	}
	if ctr.CacheSize != 3 {
		t.Fatalf("cache size = %d, want 3", ctr.CacheSize)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := skewedCollection(t)
	pl := New(2)
	for i := 0; i < 4; i++ {
		paths := []*xpath.Path{xpath.MustParse(fmt.Sprintf(`//author[.="A%d"]`, i))}
		pl.PlanSelect(c, 1, paths)
	}
	if got := pl.Counters().CacheSize; got != 2 {
		t.Fatalf("cache size = %d, want capacity 2", got)
	}
}

func TestPlanJoinSides(t *testing.T) {
	small := skewedCollection(t)
	jp := PlanJoinSides(small.Stats(), small.Stats(), 5, 30)
	if !jp.BuildLeft {
		t.Fatal("fewer left docs on equal stats: left should build")
	}
	jp = PlanJoinSides(small.Stats(), small.Stats(), 30, 5)
	if jp.BuildLeft {
		t.Fatal("fewer right docs on equal stats: right should build")
	}
}

func TestCondEstimate(t *testing.T) {
	c := skewedCollection(t)
	st := c.Stats()
	if got := CondEstimate(st, "author", "=", []string{"Rare"}); got != 2 {
		t.Fatalf(`= "Rare": %v, want 2`, got)
	}
	// A ~ condition over a cluster of both values counts the whole cluster.
	if got := CondEstimate(st, "author", "~", []string{"Rare", "Common"}); got != 40 {
		t.Fatalf(`~ cluster: %v, want 40`, got)
	}
	if got := CondEstimate(st, "author", "!=", []string{"Rare"}); got != 38 {
		t.Fatalf(`!= "Rare": %v, want 38`, got)
	}
	contains := CondEstimate(st, "author", "contains", []string{"are"})
	if contains <= 0 || contains >= 40 {
		t.Fatalf("contains estimate %v out of (0, 40)", contains)
	}
	isa := CondEstimate(st, "author", "isa", nil)
	if isa != 40*DefaultOntologySelectivity {
		t.Fatalf("isa estimate %v, want default selectivity", isa)
	}
}

func TestObserveQuantiles(t *testing.T) {
	pl := New(0)
	for i := 0; i < 100; i++ {
		pl.Observe(float64(i), float64(i)) // perfect
	}
	pl.Observe(30, 10) // error 2.0
	ctr := pl.Counters()
	if ctr.Observations != 101 {
		t.Fatalf("observations = %d", ctr.Observations)
	}
	if ctr.ErrP50 != 0 {
		t.Fatalf("p50 = %v, want 0", ctr.ErrP50)
	}
	if ctr.ErrMax != 2 {
		t.Fatalf("max = %v, want 2", ctr.ErrMax)
	}
}

func TestDocsFromNodes(t *testing.T) {
	if got := DocsFromNodes(0, 10); got != 0 {
		t.Fatalf("0 nodes → %v docs", got)
	}
	if got := DocsFromNodes(1000, 10); got > 10 {
		t.Fatalf("estimate %v exceeds doc count", got)
	}
	few := DocsFromNodes(2, 100)
	if few < 1 || few > 2 {
		t.Fatalf("2 nodes over 100 docs → %v, want ≈2", few)
	}
}
