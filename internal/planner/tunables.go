package planner

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultReoptFactor is the cardinality blow-past factor that triggers
// mid-stream re-optimization: when an operator's actual row count exceeds
// its (corrected) estimate by this factor, the remainder of the pipeline is
// re-planned. Override per Planner with SetReoptFactor (tests force 1.0).
const DefaultReoptFactor = 4.0

// tunableCeil caps how far an auto-tuned gate can be raised above its seed
// constant (seed × tunableCeil).
const tunableCeil = 8

// tunables holds the planner's auto-tuned execution gates. Every gate is
// seeded from its package constant (a zero atomic reads as the seed) and
// floored there: adaptation only ever raises a gate and decays it back, so
// small-collection behavior — and the traces tests pin — never change.
// All fields are atomics because queries read them concurrently.
type tunables struct {
	minParallelDocs   atomic.Int64
	minStreamScanDocs atomic.Int64
	reoptFactor       atomicFloat
	simTermSel        atomicFloat

	// First-result latency EWMAs per execution mode (seconds): a short
	// window tracking "now" against a long window tracking "normal".
	frStreamShort atomicFloat
	frStreamLong  atomicFloat
	frMatShort    atomicFloat
	frMatLong     atomicFloat

	reoptMaterialize atomic.Uint64
	reoptBuildSide   atomic.Uint64
}

// atomicFloat is a float64 behind an atomic.Uint64 (zero bits = 0.0).
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }

// ewma folds v into the stored value with weight alpha (an unset value takes
// v wholesale) and returns the new value.
func (a *atomicFloat) ewma(v, alpha float64) float64 {
	for {
		oldBits := a.bits.Load()
		old := math.Float64frombits(oldBits)
		next := v
		if oldBits != 0 {
			next = old*(1-alpha) + v*alpha
		}
		if a.bits.CompareAndSwap(oldBits, math.Float64bits(next)) {
			return next
		}
	}
}

// MinParallelDocsGate returns the effective parallel-evaluation gate:
// candidate sets below it are evaluated sequentially. Never below the
// MinParallelDocs seed.
func (pl *Planner) MinParallelDocsGate() int {
	if v := pl.tun.minParallelDocs.Load(); v > MinParallelDocs {
		return int(v)
	}
	return MinParallelDocs
}

// MinStreamScanDocsGate returns the effective stream-scan gate: collections
// below it keep the materialized pre-filter. Never below the
// MinStreamScanDocs seed.
func (pl *Planner) MinStreamScanDocsGate() int {
	if v := pl.tun.minStreamScanDocs.Load(); v > MinStreamScanDocs {
		return int(v)
	}
	return MinStreamScanDocs
}

// ReoptFactor returns the mid-stream re-optimization trigger factor.
func (pl *Planner) ReoptFactor() float64 {
	if v := pl.tun.reoptFactor.load(); v > 0 {
		return v
	}
	return DefaultReoptFactor
}

// SetReoptFactor overrides the re-optimization trigger factor; v <= 0
// restores the default. Tests force 1.0 to trigger on any overrun.
func (pl *Planner) SetReoptFactor(v float64) {
	if v < 0 {
		v = 0
	}
	pl.tun.reoptFactor.store(v)
}

// SimTermSelectivityGate returns the effective similarity-probe term
// selectivity: DefaultSimTermSelectivity until ObserveSimProbe has fed back
// actual filter-funnel ratios.
func (pl *Planner) SimTermSelectivityGate() float64 {
	if v := pl.tun.simTermSel.load(); v > 0 {
		return v
	}
	return DefaultSimTermSelectivity
}

// ObserveSimProbe feeds one similarity probe's filter funnel back into the
// term-selectivity estimate: candidateTerms survived the n-gram/phonetic
// filters out of distinctTerms in the dictionary.
func (pl *Planner) ObserveSimProbe(candidateTerms, distinctTerms int) {
	if distinctTerms <= 0 {
		return
	}
	sel := float64(candidateTerms) / float64(distinctTerms)
	if sel < 1.0/4096 {
		sel = 1.0 / 4096
	}
	if sel > 1 {
		sel = 1
	}
	pl.tun.simTermSel.ewma(sel, 0.3)
}

// ObserveFirstResult feeds one query's first-result latency into the
// per-mode EWMAs. When the short window degrades materially against the
// long window, the corresponding gate is raised (streaming regressing →
// raise the stream-scan gate; materialized regressing → raise the
// parallel-eval gate, the forking is the main overhead knob there); when it
// recovers, the gate decays back toward its seed.
func (pl *Planner) ObserveFirstResult(streamed bool, d time.Duration) {
	sec := d.Seconds()
	var short, long float64
	if streamed {
		short = pl.tun.frStreamShort.ewma(sec, 0.5)
		long = pl.tun.frStreamLong.ewma(sec, 0.05)
	} else {
		short = pl.tun.frMatShort.ewma(sec, 0.5)
		long = pl.tun.frMatLong.ewma(sec, 0.05)
	}
	if long <= 0 {
		return
	}
	switch {
	case short > 1.5*long:
		if streamed {
			raiseGate(&pl.tun.minStreamScanDocs, MinStreamScanDocs)
		} else {
			raiseGate(&pl.tun.minParallelDocs, MinParallelDocs)
		}
	case short < long:
		if streamed {
			decayGate(&pl.tun.minStreamScanDocs, MinStreamScanDocs)
		} else {
			decayGate(&pl.tun.minParallelDocs, MinParallelDocs)
		}
	}
}

// ObserveStreamOverrun reports that a streaming scan blew past its estimated
// scan prefix (the primary signal that the stream-scan gate is too eager);
// the gate doubles, capped at seed × tunableCeil.
func (pl *Planner) ObserveStreamOverrun() {
	raiseGate(&pl.tun.minStreamScanDocs, MinStreamScanDocs)
}

// ObserveStreamOnTarget reports a streaming scan that finished within its
// estimate; the gate decays halfway back toward its seed.
func (pl *Planner) ObserveStreamOnTarget() {
	decayGate(&pl.tun.minStreamScanDocs, MinStreamScanDocs)
}

func raiseGate(g *atomic.Int64, seed int64) {
	for {
		cur := g.Load()
		eff := cur
		if eff < seed {
			eff = seed
		}
		next := eff * 2
		if next > seed*tunableCeil {
			next = seed * tunableCeil
		}
		if g.CompareAndSwap(cur, next) {
			return
		}
	}
}

func decayGate(g *atomic.Int64, seed int64) {
	for {
		cur := g.Load()
		if cur <= seed {
			return
		}
		next := seed + (cur-seed)/2
		if g.CompareAndSwap(cur, next) {
			return
		}
	}
}

// CountReopt records one mid-stream re-optimization event for /statz and
// /metrics. Actions: "materialize" (stream-scan flipped to a materialized
// remainder) and "build-side" (hash-join build side switched).
func (pl *Planner) CountReopt(action string) {
	switch action {
	case "materialize":
		pl.tun.reoptMaterialize.Add(1)
	case "build-side":
		pl.tun.reoptBuildSide.Add(1)
	}
}
