package planner

import (
	"fmt"
	"testing"
	"time"
)

func TestFeedbackRecordCorrect(t *testing.T) {
	f := NewFeedback(0)
	key := FeedbackKey("dblp", 3, 1, PathShape("//a"))

	// No entry yet: Correct is a no-op miss.
	if got, fired := f.Correct(key, 10); fired || got != 10 {
		t.Fatalf("Correct on empty store = (%g, %t), want (10, false)", got, fired)
	}
	if f.Factor(key) != 1 {
		t.Fatalf("Factor on empty store = %g, want 1", f.Factor(key))
	}

	// First observation takes the clamped ratio wholesale.
	f.Record(key, 10, 20) // ratio 2
	if got := f.Factor(key); got != 2 {
		t.Fatalf("factor after first Record = %g, want 2", got)
	}
	if got, fired := f.Correct(key, 10); !fired || got != 20 {
		t.Fatalf("Correct = (%g, %t), want (20, true)", got, fired)
	}

	// Later observations blend with exponential decay:
	// old*(1-CorrectionDecay) + ratio*CorrectionDecay.
	f.Record(key, 10, 40) // ratio 4
	want := 2*(1-CorrectionDecay) + 4*CorrectionDecay
	if got := f.Factor(key); got != want {
		t.Fatalf("decayed factor = %g, want %g", got, want)
	}

	rec, app, _, entries := f.counters()
	if rec != 2 || app != 1 || entries != 1 {
		t.Fatalf("counters = recorded %d applied %d entries %d, want 2/1/1", rec, app, entries)
	}
}

func TestFeedbackRatioClampAndEstFloor(t *testing.T) {
	f := NewFeedback(0)

	// Zero actual clamps at 1/CorrectionClamp instead of zeroing forever.
	low := FeedbackKey("c", 0, 0, "low")
	f.Record(low, 1000, 0)
	if got := f.Factor(low); got != 1/CorrectionClamp {
		t.Fatalf("zero-actual factor = %g, want %g", got, 1/CorrectionClamp)
	}

	// Huge actual clamps at CorrectionClamp.
	high := FeedbackKey("c", 0, 0, "high")
	f.Record(high, 1, 1e9)
	if got := f.Factor(high); got != CorrectionClamp {
		t.Fatalf("huge-actual factor = %g, want %g", got, CorrectionClamp)
	}

	// Sub-one estimates are floored at 0.5 before the ratio: estimating 0.001
	// and observing 1 is a ~2x miss, not a 1000x one.
	floor := FeedbackKey("c", 0, 0, "floor")
	f.Record(floor, 0.001, 1)
	if got := f.Factor(floor); got != 2 {
		t.Fatalf("floored-estimate factor = %g, want 2", got)
	}
}

func TestFeedbackLRUBound(t *testing.T) {
	f := NewFeedback(4)
	for i := 0; i < 10; i++ {
		f.Record(fmt.Sprintf("k%d", i), 10, 20)
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want cap 4", f.Len())
	}
	// Oldest entries were evicted; the newest survived.
	if f.Factor("k0") != 1 {
		t.Error("k0 should have been evicted (factor 1)")
	}
	if f.Factor("k9") != 2 {
		t.Errorf("k9 factor = %g, want 2", f.Factor("k9"))
	}
}

func TestFeedbackEpochBumpsOnMaterialMove(t *testing.T) {
	f := NewFeedback(0)
	key := FeedbackKey("dblp", 0, 0, "shape")

	// First observation: factor moves 1 → 2, a 100% relative move — material.
	before := f.Epoch()
	f.Record(key, 10, 20)
	if f.Epoch() == before {
		t.Fatal("first material factor move must bump the epoch")
	}

	// Repeating the same observation leaves the factor in place: no bump.
	before = f.Epoch()
	f.Record(key, 10, 20)
	if f.Epoch() != before {
		t.Fatal("steady-state observation must not bump the epoch")
	}

	// A big swing bumps again.
	f.Record(key, 10, 1000)
	if f.Epoch() == before {
		t.Fatal("large factor swing must bump the epoch")
	}
}

func TestFeedbackKeyIsolation(t *testing.T) {
	f := NewFeedback(0)
	base := FeedbackKey("dblp", 1, 1, "shape")
	f.Record(base, 10, 40)
	if f.Factor(base) != 4 {
		t.Fatalf("factor = %g, want 4", f.Factor(base))
	}

	// A data write bumps the collection generation; the new key starts clean.
	if k := FeedbackKey("dblp", 2, 1, "shape"); f.Factor(k) != 1 {
		t.Errorf("generation-bumped key inherited factor %g", f.Factor(k))
	}
	// A live ontology mutation bumps the snapshot version; same reset.
	if k := FeedbackKey("dblp", 1, 2, "shape"); f.Factor(k) != 1 {
		t.Errorf("ontology-bumped key inherited factor %g", f.Factor(k))
	}
	// Another collection never shares corrections.
	if k := FeedbackKey("proc", 1, 1, "shape"); f.Factor(k) != 1 {
		t.Errorf("cross-collection key inherited factor %g", f.Factor(k))
	}
}

func TestTunableGatesFloorAndCeil(t *testing.T) {
	pl := New(0)
	if pl.MinParallelDocsGate() != MinParallelDocs {
		t.Fatalf("fresh parallel gate = %d, want seed %d", pl.MinParallelDocsGate(), MinParallelDocs)
	}
	if pl.MinStreamScanDocsGate() != MinStreamScanDocs {
		t.Fatalf("fresh stream gate = %d, want seed %d", pl.MinStreamScanDocsGate(), MinStreamScanDocs)
	}

	// Overruns double the stream gate, capped at seed × tunableCeil.
	for i := 0; i < 20; i++ {
		pl.ObserveStreamOverrun()
	}
	if got, want := pl.MinStreamScanDocsGate(), MinStreamScanDocs*tunableCeil; got != want {
		t.Fatalf("raised stream gate = %d, want ceiling %d", got, want)
	}

	// On-target scans decay the gate halfway back toward the seed — and never
	// below it.
	for i := 0; i < 40; i++ {
		pl.ObserveStreamOnTarget()
	}
	if got := pl.MinStreamScanDocsGate(); got != MinStreamScanDocs {
		t.Fatalf("decayed stream gate = %d, want seed %d", got, MinStreamScanDocs)
	}
}

func TestObserveFirstResultRaisesParallelGate(t *testing.T) {
	pl := New(0)
	// Establish a fast long-window baseline, then degrade sharply: the
	// materialized-mode gate must rise above its seed.
	for i := 0; i < 50; i++ {
		pl.ObserveFirstResult(false, time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		pl.ObserveFirstResult(false, 100*time.Millisecond)
	}
	if got := pl.MinParallelDocsGate(); got <= MinParallelDocs {
		t.Fatalf("degraded first-result latency left parallel gate at %d", got)
	}
	// Recovery decays it back to the seed floor.
	for i := 0; i < 200; i++ {
		pl.ObserveFirstResult(false, time.Microsecond)
	}
	if got := pl.MinParallelDocsGate(); got != MinParallelDocs {
		t.Fatalf("recovered parallel gate = %d, want seed %d", got, MinParallelDocs)
	}
}

func TestObserveSimProbeTunesTermSelectivity(t *testing.T) {
	pl := New(0)
	if got := pl.SimTermSelectivityGate(); got != DefaultSimTermSelectivity {
		t.Fatalf("fresh term selectivity = %g, want default %g", got, DefaultSimTermSelectivity)
	}
	pl.ObserveSimProbe(50, 100)
	if got := pl.SimTermSelectivityGate(); got != 0.5 {
		t.Fatalf("first observation = %g, want 0.5 wholesale", got)
	}
	// Clamped below at 1/4096 even for empty funnels…
	for i := 0; i < 100; i++ {
		pl.ObserveSimProbe(0, 1000000)
	}
	if got := pl.SimTermSelectivityGate(); got < 1.0/4096-1e-12 {
		t.Fatalf("selectivity %g fell below the 1/4096 clamp", got)
	}
	// …and above at 1.
	for i := 0; i < 100; i++ {
		pl.ObserveSimProbe(2000, 1000)
	}
	if got := pl.SimTermSelectivityGate(); got > 1 {
		t.Fatalf("selectivity %g exceeded 1", got)
	}
	// Zero dictionary: ignored.
	before := pl.SimTermSelectivityGate()
	pl.ObserveSimProbe(10, 0)
	if got := pl.SimTermSelectivityGate(); got != before {
		t.Fatal("zero-dictionary observation must be ignored")
	}
}

func TestAdaptivePlanCacheEpochInvalidation(t *testing.T) {
	pl := New(0)
	plan := &SelectPlan{Collection: "dblp"}

	pl.cachePut("a\x00k", 0, plan)
	if _, ok := pl.cacheGet("a\x00k", 0, true); !ok {
		t.Fatal("same-epoch lookup must hit")
	}
	// Epoch moved: the entry is evicted and the lookup is a miss.
	if _, ok := pl.cacheGet("a\x00k", 1, true); ok {
		t.Fatal("stale-epoch lookup must miss")
	}
	if pl.epochInvalidate.Load() != 1 {
		t.Fatalf("epoch invalidations = %d, want 1", pl.epochInvalidate.Load())
	}
	if _, ok := pl.cacheGet("a\x00k", 1, true); ok {
		t.Fatal("evicted entry must stay gone")
	}

	// Static lookups ignore epochs entirely.
	pl.cachePut("k", 0, plan)
	if _, ok := pl.cacheGet("k", 99, false); !ok {
		t.Fatal("static lookup must ignore the epoch")
	}
}
