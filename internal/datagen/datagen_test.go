package datagen

import (
	"strings"
	"testing"

	"repro/internal/similarity"
	"repro/internal/tree"
)

func TestDeterminism(t *testing.T) {
	a := Generate(DefaultConfig(50))
	b := Generate(DefaultConfig(50))
	if a.DBLPString(a.Papers) != b.DBLPString(b.Papers) {
		t.Fatal("same seed must produce identical corpora")
	}
	cfg := DefaultConfig(50)
	cfg.Seed = 2
	c := Generate(cfg)
	if a.DBLPString(a.Papers) == c.DBLPString(c.Papers) {
		t.Fatal("different seeds should differ")
	}
}

func TestCorpusShape(t *testing.T) {
	cfg := DefaultConfig(100)
	corpus := Generate(cfg)
	if len(corpus.Papers) != 100 {
		t.Fatalf("papers = %d", len(corpus.Papers))
	}
	if len(corpus.Authors) != cfg.AuthorPool {
		t.Fatalf("authors = %d", len(corpus.Authors))
	}
	ids := map[string]bool{}
	for _, p := range corpus.Papers {
		if ids[p.ID] {
			t.Fatalf("duplicate paper ID %s", p.ID)
		}
		ids[p.ID] = true
		if len(p.AuthorIDs) < 1 || len(p.AuthorIDs) > 3 {
			t.Errorf("paper %s has %d authors", p.ID, len(p.AuthorIDs))
		}
		if len(p.AuthorIDs) != len(p.DBLPAuthors) || len(p.AuthorIDs) != len(p.SIGMODAuthors) {
			t.Errorf("paper %s surface forms out of sync", p.ID)
		}
		if p.Year < cfg.StartYear || p.Year > cfg.EndYear {
			t.Errorf("paper %s year %d out of range", p.ID, p.Year)
		}
		if p.ConfID < 0 || p.ConfID >= len(corpus.Conferences) {
			t.Errorf("paper %s conf %d out of range", p.ID, p.ConfID)
		}
		if len(p.TitleWords) != 4 {
			t.Errorf("paper %s title words = %v", p.ID, p.TitleWords)
		}
	}
	// Canonical names are unique.
	names := map[string]bool{}
	for _, a := range corpus.Authors {
		if names[a.Canonical()] {
			t.Fatalf("duplicate author %s", a.Canonical())
		}
		names[a.Canonical()] = true
	}
}

func TestRenderedXMLParses(t *testing.T) {
	corpus := Generate(DefaultConfig(60))
	col := tree.NewCollection()
	dblp, err := col.ParseXMLString(corpus.DBLPString(corpus.Papers))
	if err != nil {
		t.Fatalf("DBLP XML invalid: %v", err)
	}
	if got := len(dblp.FindTag("inproceedings")); got != 60 {
		t.Errorf("DBLP has %d papers", got)
	}
	sig, err := col.ParseXMLString(corpus.SIGMODString(corpus.Papers[:20]))
	if err != nil {
		t.Fatalf("SIGMOD XML invalid: %v", err)
	}
	if got := len(sig.FindTag("article")); got != 20 {
		t.Errorf("SIGMOD has %d articles", got)
	}
	// Ground-truth keys are embedded.
	keys := dblp.FindTag("@key")
	if len(keys) != 60 {
		t.Errorf("keys = %d", len(keys))
	}
	// Venue forms differ between the corpora.
	if dblp.FindTag("booktitle")[0].Content == sig.FindTag("conference")[0].Content {
		t.Error("DBLP short venue should differ from SIGMOD long venue")
	}
}

func TestGroundTruthHelpers(t *testing.T) {
	corpus := Generate(DefaultConfig(80))
	total := 0
	for _, a := range corpus.Authors {
		papers := corpus.PapersByAuthor(a.ID)
		total += len(papers)
		for id := range papers {
			found := false
			for _, p := range corpus.Papers {
				if p.ID == id {
					for _, aid := range p.AuthorIDs {
						if aid == a.ID {
							found = true
						}
					}
				}
			}
			if !found {
				t.Fatalf("PapersByAuthor(%d) contains wrong paper %s", a.ID, id)
			}
		}
	}
	if total == 0 {
		t.Fatal("no author has papers")
	}
	byConf := 0
	for _, c := range corpus.Conferences {
		byConf += len(corpus.PapersByConference(c.ID))
	}
	if byConf != len(corpus.Papers) {
		t.Errorf("conference partition covers %d of %d papers", byConf, len(corpus.Papers))
	}
	withQuery := corpus.PapersByTitleWord(func(w string) bool { return w == "query" })
	for id := range withQuery {
		var paper *Paper
		for _, p := range corpus.Papers {
			if p.ID == id {
				paper = p
			}
		}
		if !strings.Contains(strings.ToLower(paper.Title), "query") {
			t.Errorf("paper %s title %q lacks the word", id, paper.Title)
		}
	}
	inter := Intersect(withQuery, corpus.PapersByConference(0))
	for id := range inter {
		if !withQuery[id] || !corpus.PapersByConference(0)[id] {
			t.Error("Intersect broken")
		}
	}
	if Intersect() != nil {
		t.Error("empty Intersect should be nil")
	}
}

func TestAuthorLookupAndMentions(t *testing.T) {
	corpus := Generate(DefaultConfig(80))
	a := corpus.Authors[0]
	if corpus.AuthorByCanonical(a.Canonical()) != a {
		t.Error("AuthorByCanonical failed")
	}
	if corpus.AuthorByCanonical("Nobody Q. Nowhere") != nil {
		t.Error("unknown author should be nil")
	}
	for _, aa := range corpus.Authors {
		mentions := corpus.MentionsOf(aa.ID)
		if len(corpus.PapersByAuthor(aa.ID)) > 0 && len(mentions) == 0 {
			t.Errorf("author %d has papers but no mentions", aa.ID)
		}
	}
}

func TestVariantsAreRecognisable(t *testing.T) {
	// Every generated mention should be within NameRule distance 4 of the
	// canonical form (initial + dropped middle + surname swap is the worst
	// mangle), except when a typo lands awkwardly — allow a small slack.
	cfg := DefaultConfig(150)
	cfg.VariantRate = 0.9
	cfg.TypoRate = 0.3
	cfg.MangleRate = 0.3
	corpus := Generate(cfg)
	n := similarity.NameRule{}
	far := 0
	total := 0
	for _, p := range corpus.Papers {
		for i, id := range p.AuthorIDs {
			canon := corpus.Authors[id].Canonical()
			for _, mention := range []string{p.DBLPAuthors[i], p.SIGMODAuthors[i]} {
				total++
				if n.Distance(canon, mention) > 5 {
					far++
				}
			}
		}
	}
	if far*10 > total {
		t.Errorf("%d/%d mentions are unrecognisably far from canonical", far, total)
	}
}

func TestMangleDistances(t *testing.T) {
	cfg := DefaultConfig(200)
	cfg.MangleRate = 1 // every mention mangled
	cfg.VariantRate = 0
	cfg.TypoRate = 0
	corpus := Generate(cfg)
	n := similarity.NameRule{}
	for _, p := range corpus.Papers[:50] {
		for i, id := range p.AuthorIDs {
			canon := corpus.Authors[id].Canonical()
			d := n.Distance(canon, p.DBLPAuthors[i])
			// Mangled forms sit at 1–6: at least a typo away, at most a
			// bare initial + two dropped given tokens + surname swap.
			if d < 1 || d > 6 {
				t.Errorf("mangle distance %g for %q vs %q", d, canon, p.DBLPAuthors[i])
			}
		}
	}
}

func TestSurnamePool(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.AuthorPool = 20
	cfg.SurnamePool = 3
	corpus := Generate(cfg)
	surnames := map[string]bool{}
	for _, a := range corpus.Authors {
		surnames[a.Last] = true
	}
	if len(surnames) > 3 {
		t.Errorf("surname pool not honoured: %v", surnames)
	}
}

func TestXMLEscaping(t *testing.T) {
	if esc(`a & <b> "c"`) != "a &amp; &lt;b&gt; &quot;c&quot;" {
		t.Errorf("esc = %q", esc(`a & <b> "c"`))
	}
}
