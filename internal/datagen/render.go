package datagen

import (
	"fmt"
	"io"
	"strings"
	"unicode"
)

// titleCase upper-cases the first letter of each space-separated word.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		r := []rune(w)
		r[0] = unicode.ToUpper(r[0])
		words[i] = string(r)
	}
	return strings.Join(words, " ")
}

// WriteDBLPXML renders the given papers in DBLP format (the schema of the
// paper's Figure 1): a <dblp> root with one <inproceedings> per paper whose
// children are author*, title, pages, year, booktitle, plus a key attribute
// carrying the ground-truth paper ID so experiment harnesses can score
// answers.
func (c *Corpus) WriteDBLPXML(w io.Writer, papers []*Paper) error {
	var b strings.Builder
	b.WriteString("<dblp>\n")
	for _, p := range papers {
		fmt.Fprintf(&b, "<inproceedings key=%q>\n", p.ID)
		for _, a := range p.DBLPAuthors {
			fmt.Fprintf(&b, "<author>%s</author>\n", esc(a))
		}
		fmt.Fprintf(&b, "<title>%s</title>\n", esc(p.Title))
		fmt.Fprintf(&b, "<pages>%s</pages>\n", esc(p.Pages))
		fmt.Fprintf(&b, "<year>%d</year>\n", p.Year)
		fmt.Fprintf(&b, "<booktitle>%s</booktitle>\n", esc(c.Conferences[p.ConfID].Short))
		b.WriteString("</inproceedings>\n")
	}
	b.WriteString("</dblp>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// DBLPString renders papers in DBLP format as a string.
func (c *Corpus) DBLPString(papers []*Paper) string {
	var b strings.Builder
	if err := c.WriteDBLPXML(&b, papers); err != nil {
		return ""
	}
	return b.String()
}

// WriteSIGMODXML renders the given papers in SIGMOD Record format (the
// schema of the paper's Figure 2): a <ProceedingsPage> with an <articles>
// list of <article> elements carrying title, author*, conference (long
// form), confYear. Titles get SIGMOD-style subtitle punctuation and the
// author surface forms favour initials.
func (c *Corpus) WriteSIGMODXML(w io.Writer, papers []*Paper) error {
	var b strings.Builder
	b.WriteString("<ProceedingsPage>\n<articles>\n")
	for _, p := range papers {
		fmt.Fprintf(&b, "<article key=%q>\n", p.ID)
		fmt.Fprintf(&b, "<title>%s.</title>\n", esc(p.Title))
		for _, a := range p.SIGMODAuthors {
			fmt.Fprintf(&b, "<author>%s</author>\n", esc(a))
		}
		fmt.Fprintf(&b, "<conference>%s</conference>\n", esc(c.Conferences[p.ConfID].Long))
		fmt.Fprintf(&b, "<confYear>%d</confYear>\n", p.Year)
		b.WriteString("</article>\n")
	}
	b.WriteString("</articles>\n</ProceedingsPage>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// SIGMODString renders papers in SIGMOD format as a string.
func (c *Corpus) SIGMODString(papers []*Paper) string {
	var b strings.Builder
	if err := c.WriteSIGMODXML(&b, papers); err != nil {
		return ""
	}
	return b.String()
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ---- ground truth ----

// PapersByAuthor returns the set of paper IDs written by the author entity.
func (c *Corpus) PapersByAuthor(authorID int) map[string]bool {
	out := map[string]bool{}
	for _, p := range c.Papers {
		for _, id := range p.AuthorIDs {
			if id == authorID {
				out[p.ID] = true
				break
			}
		}
	}
	return out
}

// PapersByConference returns the set of paper IDs published at the venue.
func (c *Corpus) PapersByConference(confID int) map[string]bool {
	out := map[string]bool{}
	for _, p := range c.Papers {
		if p.ConfID == confID {
			out[p.ID] = true
		}
	}
	return out
}

// PapersByTitleWord returns papers whose title words satisfy pred.
func (c *Corpus) PapersByTitleWord(pred func(word string) bool) map[string]bool {
	out := map[string]bool{}
	for _, p := range c.Papers {
		for _, w := range p.TitleWords {
			if pred(strings.ToLower(w)) {
				out[p.ID] = true
				break
			}
		}
	}
	return out
}

// Intersect intersects ground-truth sets.
func Intersect(sets ...map[string]bool) map[string]bool {
	if len(sets) == 0 {
		return nil
	}
	out := map[string]bool{}
	for k := range sets[0] {
		all := true
		for _, s := range sets[1:] {
			if !s[k] {
				all = false
				break
			}
		}
		if all {
			out[k] = true
		}
	}
	return out
}

// AuthorByCanonical finds an author entity by canonical name, or nil.
func (c *Corpus) AuthorByCanonical(name string) *Author {
	for _, a := range c.Authors {
		if a.Canonical() == name {
			return a
		}
	}
	return nil
}

// MentionsOf returns every distinct surface form used for the author across
// both corpora, sorted by first use.
func (c *Corpus) MentionsOf(authorID int) []string {
	var out []string
	seen := map[string]bool{}
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, p := range c.Papers {
		for i, id := range p.AuthorIDs {
			if id == authorID {
				add(p.DBLPAuthors[i])
				add(p.SIGMODAuthors[i])
			}
		}
	}
	return out
}
