// Package datagen generates the synthetic DBLP and SIGMOD bibliographic
// corpora the experiments run on. The paper evaluated on the real DBLP dump
// (truncated to 4,753,774 bytes / 3712 papers for Xindice's 5 MB limit) and
// the 16 SIGMOD Record proceedings pages; those files are not available
// offline, so this package produces structurally identical XML (the schemas
// of the paper's Figures 1 and 2) with controlled, realistic variation in
// author names, venue names and titles — and, crucially, ground-truth entity
// identifiers, so precision and recall can be scored exactly instead of by
// hand as in the paper.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config controls corpus generation. The zero value is not useful; call
// DefaultConfig.
type Config struct {
	Seed        int64
	Papers      int
	AuthorPool  int // number of distinct author entities
	ConfPool    int // number of distinct conference entities (max len(conferences))
	SurnamePool int // restrict surnames to the first N of the pool (0 = all); small values create same-surname entities whose initialled mentions collide
	StartYear   int
	EndYear     int
	VariantRate float64 // probability an author mention uses a non-canonical form
	TypoRate    float64 // probability a mention gets a typo on top
	// MangleRate is the probability of a heavily-mangled mention:
	// abbreviation plus a surname typo. Under the rule-based name measure
	// these sit at distance 3–4 from the canonical form, which is what
	// separates recall at ε=2 from recall at ε=3 in the quality experiment.
	MangleRate float64
}

// DefaultConfig mirrors the paper's data shape at a configurable scale.
func DefaultConfig(papers int) Config {
	pool := papers
	if pool > 400 {
		pool = 400
	}
	if pool < 10 {
		pool = 10
	}
	return Config{
		Seed:        1,
		Papers:      papers,
		AuthorPool:  pool,
		ConfPool:    8,
		StartYear:   1995,
		EndYear:     2003,
		VariantRate: 0.6,
		TypoRate:    0.05,
	}
}

// Author is a ground-truth author entity.
type Author struct {
	ID     int
	First  string
	Middle string
	Last   string
}

// Canonical returns the canonical full name ("Jeffrey David Ullman").
func (a *Author) Canonical() string {
	if a.Middle == "" {
		return a.First + " " + a.Last
	}
	return a.First + " " + a.Middle + " " + a.Last
}

// Conference is a ground-truth venue entity with the short form DBLP uses
// and the long form the SIGMOD pages use.
type Conference struct {
	ID    int
	Short string // e.g. "SIGMOD Conference"
	Long  string // e.g. "International Conference on Management of Data"
}

// Paper is a ground-truth paper: entity references plus the exact surface
// strings each corpus renders.
type Paper struct {
	ID         string
	TitleWords []string
	Title      string
	AuthorIDs  []int
	ConfID     int
	Year       int
	Pages      string

	// Surface forms, fixed at generation time so runs are reproducible.
	DBLPAuthors   []string
	SIGMODAuthors []string
}

// Corpus is a generated ground-truth dataset.
type Corpus struct {
	Config      Config
	Authors     []*Author
	Conferences []*Conference
	Papers      []*Paper
}

var firstNames = []string{
	"Jeffrey", "Paolo", "Marco", "Mauro", "Gian Luigi", "Elisa", "Serge",
	"Hector", "Jennifer", "Rakesh", "Michael", "David", "Susan", "Peter",
	"Laura", "Alberto", "Divesh", "Raghu", "Timos", "Christos", "Yannis",
	"Dan", "Alon", "Renee", "Victor", "Edward", "Maria", "Sophie", "Wei",
	"Hans", "Gerhard", "Patricia", "Umesh", "Vasilis", "Ioana", "Kevin",
	"Nina", "Oscar", "Priya", "Quentin", "Rita", "Samuel", "Tina", "Ugo",
	"Vera", "Walter", "Xena", "Yuri", "Zoe", "Anand", "Boris", "Carla",
	"Dieter", "Elena", "Franco", "Greta", "Hiro", "Ines", "Jorge", "Karin",
}

var middleNames = []string{
	"", "", "", "D.", "K.", "J.", "M.", "A.", "R.", "S.", "L.", "E.", "",
}

var lastNames = []string{
	"Ullman", "Ciancarini", "Ferrari", "Bertino", "Abiteboul", "Garcia-Molina",
	"Widom", "Agrawal", "Carey", "DeWitt", "Davidson", "Buneman", "Vianu",
	"Sellis", "Faloutsos", "Ioannidis", "Suciu", "Halevy", "Miller", "Vianna",
	"Hung", "Deng", "Subrahmanian", "Jagadish", "Lakshmanan", "Srivastava",
	"Ramakrishnan", "Naughton", "Stonebraker", "Gray", "Bernstein", "Chaudhuri",
	"Narasayya", "Kossmann", "Weikum", "Kemper", "Neumann", "Lehner", "Haas",
	"Franklin", "Hellerstein", "Olston", "Dittrich", "Baeza-Yates", "Navarro",
	"Sakai", "Tanaka", "Kitsuregawa", "Chen", "Wang", "Li", "Zhang", "Zhou",
}

var conferencePool = []Conference{
	{Short: "SIGMOD Conference", Long: "International Conference on Management of Data"},
	{Short: "VLDB", Long: "International Conference on Very Large Data Bases"},
	{Short: "ICDE", Long: "International Conference on Data Engineering"},
	{Short: "PODS", Long: "Symposium on Principles of Database Systems"},
	{Short: "EDBT", Long: "International Conference on Extending Database Technology"},
	{Short: "KDD", Long: "International Conference on Knowledge Discovery and Data Mining"},
	{Short: "CIKM", Long: "International Conference on Information and Knowledge Management"},
	{Short: "WWW", Long: "International World Wide Web Conference"},
}

// Title vocabulary. The lexicon in internal/wordnet knows several of these
// words (relational, model, database, query, index, view, transaction, xml,
// join, optimization), which is what gives the isa conditions of the quality
// experiment real semantic reach.
var (
	titleOpeners = []string{
		"Efficient", "Scalable", "Adaptive", "Incremental", "Distributed",
		"Secure", "Approximate", "Materialized", "Parallel", "Declarative",
	}
	titleTopics = []string{
		"relational", "xml", "semistructured", "spatial", "temporal",
		"multimedia", "probabilistic", "streaming", "federated", "deductive",
	}
	titleNouns = []string{
		"query", "queries", "view", "views", "index", "indexes", "indices",
		"join", "joins", "transaction", "transactions", "model", "models",
		"database", "databases", "optimization", "integration",
	}
	titleTails = []string{
		"processing", "evaluation", "selection", "maintenance", "estimation",
		"execution", "mining", "ranking", "clustering", "compression",
	}
)

// Generate produces a deterministic corpus for the configuration.
func Generate(cfg Config) *Corpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{Config: cfg}

	surnames := lastNames
	if cfg.SurnamePool > 0 && cfg.SurnamePool < len(lastNames) {
		surnames = lastNames[:cfg.SurnamePool]
	}
	used := map[string]bool{}
	for i := 0; i < cfg.AuthorPool; i++ {
		var a *Author
		for {
			a = &Author{
				ID:     i,
				First:  firstNames[rng.Intn(len(firstNames))],
				Middle: middleNames[rng.Intn(len(middleNames))],
				Last:   surnames[rng.Intn(len(surnames))],
			}
			if !used[a.Canonical()] {
				used[a.Canonical()] = true
				break
			}
		}
		c.Authors = append(c.Authors, a)
	}

	nConf := cfg.ConfPool
	if nConf <= 0 || nConf > len(conferencePool) {
		nConf = len(conferencePool)
	}
	for i := 0; i < nConf; i++ {
		conf := conferencePool[i]
		conf.ID = i
		c.Conferences = append(c.Conferences, &conf)
	}

	for i := 0; i < cfg.Papers; i++ {
		p := &Paper{
			ID:     fmt.Sprintf("paper-%05d", i),
			ConfID: rng.Intn(nConf),
			Year:   cfg.StartYear + rng.Intn(cfg.EndYear-cfg.StartYear+1),
		}
		start := 1 + rng.Intn(400)
		p.Pages = fmt.Sprintf("%d-%d", start, start+4+rng.Intn(20))
		p.TitleWords = []string{
			titleOpeners[rng.Intn(len(titleOpeners))],
			titleTopics[rng.Intn(len(titleTopics))],
			titleNouns[rng.Intn(len(titleNouns))],
			titleTails[rng.Intn(len(titleTails))],
		}
		p.Title = strings.Join([]string{
			p.TitleWords[0],
			titleCase(p.TitleWords[1]),
			titleCase(p.TitleWords[2]),
			titleCase(p.TitleWords[3]),
		}, " ")
		nAuthors := 1 + rng.Intn(3)
		seen := map[int]bool{}
		for len(p.AuthorIDs) < nAuthors {
			id := rng.Intn(cfg.AuthorPool)
			if !seen[id] {
				seen[id] = true
				p.AuthorIDs = append(p.AuthorIDs, id)
			}
		}
		for _, id := range p.AuthorIDs {
			a := c.Authors[id]
			p.DBLPAuthors = append(p.DBLPAuthors, renderName(rng, a, cfg, false))
			p.SIGMODAuthors = append(p.SIGMODAuthors, renderName(rng, a, cfg, true))
		}
		c.Papers = append(c.Papers, p)
	}
	return c
}

// renderName produces a surface form of the author's name. The SIGMOD pages
// lean toward initials (as in the paper's Figure 2), DBLP toward full names
// (Figure 1); both are perturbed with the configured variant and typo rates.
func renderName(rng *rand.Rand, a *Author, cfg Config, sigmod bool) string {
	name := a.Canonical()
	if rng.Float64() < cfg.MangleRate {
		return mangle(rng, a)
	}
	if rng.Float64() < cfg.VariantRate {
		switch pick := rng.Intn(4); {
		case sigmod && pick < 2:
			name = initials(a)
		case pick == 0:
			name = a.First + " " + a.Last
		case pick == 1:
			name = initials(a)
		case pick == 2 && a.Middle != "":
			name = a.First + " " + string(a.Middle[0]) + ". " + a.Last
		default:
			name = concatSpaces(a)
		}
	}
	if rng.Float64() < cfg.TypoRate {
		name = typo(rng, name)
	}
	return name
}

// mangle renders a heavily-degraded mention: an abbreviated given name plus
// a typo in the surname ("J. D. Ulmlan"). Under similarity.NameRule these
// forms are 3–4 away from the canonical name.
func mangle(rng *rand.Rand, a *Author) string {
	surname := typoForce(rng, a.Last)
	switch rng.Intn(3) {
	case 0: // initials with middle kept: distance 1 + 2 = 3
		s := string([]rune(a.First)[0]) + "."
		if a.Middle != "" {
			s += " " + string(a.Middle[0]) + "."
		}
		return s + " " + surname
	case 1: // full first, dropped middle: distance ≤ 1 + 2 = 3
		return a.First + " " + surname
	default: // bare initial, dropped middle: distance 2 + 2 = 4
		return string([]rune(a.First)[0]) + ". " + surname
	}
}

// typoForce applies one adjacent swap that actually changes the word
// (swapping a double letter is a no-op and is retried).
func typoForce(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) < 3 {
		return s + "e"
	}
	for tries := 0; tries < 20; tries++ {
		i := 1 + rng.Intn(len(r)-2)
		if r[i] != r[i+1] {
			r[i], r[i+1] = r[i+1], r[i]
			return string(r)
		}
	}
	return s + "e"
}

// initials renders "J. D. Ullman"-style names.
func initials(a *Author) string {
	s := string([]rune(a.First)[0]) + "."
	if a.Middle != "" {
		s += " " + string(a.Middle[0]) + "."
	}
	return s + " " + a.Last
}

// concatSpaces removes the space of a two-word first name ("Gian Luigi" →
// "GianLuigi"), a data-entry error the paper calls out; single-word first
// names are returned canonical.
func concatSpaces(a *Author) string {
	if !strings.Contains(a.First, " ") {
		return a.Canonical()
	}
	first := strings.ReplaceAll(a.First, " ", "")
	if a.Middle == "" {
		return first + " " + a.Last
	}
	return first + " " + a.Middle + " " + a.Last
}

// typo swaps two adjacent letters somewhere in the name.
func typo(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) < 4 {
		return s
	}
	for tries := 0; tries < 10; tries++ {
		i := 1 + rng.Intn(len(r)-2)
		if r[i] != ' ' && r[i+1] != ' ' && r[i] != '.' && r[i+1] != '.' {
			r[i], r[i+1] = r[i+1], r[i]
			return string(r)
		}
	}
	return s
}
