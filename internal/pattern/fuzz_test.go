package pattern

import "testing"

// FuzzParse checks that the pattern parser never panics and that whatever it
// accepts re-parses to the same rendering (print/parse stability).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`#1`,
		`#1 pc #2`,
		`#1 pc #2, #1 ad #3 :: #1.tag = "inproceedings" & #2.content ~ "J. Ullman"`,
		`#1 :: #1.content isa "person" | !(#1.tag != "x")`,
		`#1 :: "3":int <= #1.content`,
		`#1 pc #2 :: #1.tag = "a" and #2.tag = "b" or not #2.content = "c"`,
		`#1 :: #1.content = "say \"hi\""`,
		`#9999 pc #0 :: #0.tag contains "x"`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Parse(src)
		if err != nil {
			return
		}
		rendered := p1.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if p2.String() != rendered {
			t.Fatalf("rendering unstable: %q -> %q", rendered, p2.String())
		}
	})
}

// FuzzParseCondition checks the condition parser in isolation.
func FuzzParseCondition(f *testing.F) {
	for _, seed := range []string{
		`#1.tag = "x"`,
		`#1.content ~ "a" & (#2.content isa "b" | !(#3.tag <= "c"))`,
		`"v":int >= #4.content`,
		`#1.content instance_of int`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseCondition(src)
		if err != nil {
			return
		}
		rendered := c.String()
		c2, err := ParseCondition(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if c2.String() != rendered {
			t.Fatalf("rendering unstable: %q -> %q", rendered, c2.String())
		}
	})
}
