package pattern_test

import (
	"fmt"

	"repro/internal/pattern"
)

// Parsing a TOSS pattern: structure (pc/ad edges) and a selection condition
// with a similarity and an isa atom.
func ExampleParse() {
	p, err := pattern.Parse(`#1 pc #2, #1 ad #3 :: ` +
		`#1.tag = "inproceedings" & #2.tag = "author" & ` +
		`#2.content ~ "J. Ullman" & #3.content isa "conference"`)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.NodeCount())
	fmt.Println(p.Node(3).EdgeIn)
	fmt.Println(len(pattern.Atoms(p.Cond)))
	// Output:
	// 3
	// ad
	// 4
}

// Rewrite transforms conditions without mutating the original — here
// degrading TOSS operators to their TAX baseline forms.
func ExampleRewrite() {
	c := pattern.MustParseCondition(`#1.content ~ "x" & #1.content isa "y"`)
	baseline := pattern.Rewrite(c, func(a *pattern.Atomic) pattern.Condition {
		switch a.Op {
		case pattern.OpSim:
			a.Op = pattern.OpEq
		case pattern.OpIsa:
			a.Op = pattern.OpContains
		}
		return a
	})
	fmt.Println(baseline)
	// Output:
	// (#1.content = "x") & (#1.content contains "y")
}
