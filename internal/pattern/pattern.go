// Package pattern implements TAX/TOSS pattern trees (Definition 2 of the
// paper): object-labelled, edge-labelled trees whose edges are either
// parent-child (pc) or ancestor-descendant (ad), together with a selection
// condition — a boolean formula over atomic conditions "X op Y" where X and Y
// are node attributes (#i.tag / #i.content), types, or typed values.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// EdgeKind distinguishes parent-child from ancestor-descendant pattern edges.
type EdgeKind int

const (
	// PC requires the image of the child node to be a direct child of the
	// image of the parent node.
	PC EdgeKind = iota
	// AD requires the image of the child node to be a proper descendant of
	// the image of the parent node.
	AD
)

func (k EdgeKind) String() string {
	if k == PC {
		return "pc"
	}
	return "ad"
}

// PNode is a node of a pattern tree, identified by a distinct integer label.
type PNode struct {
	Label    int
	Parent   *PNode
	EdgeIn   EdgeKind // kind of the edge from Parent to this node
	Children []*PNode
}

// Tree is a pattern tree: a labelled tree plus a selection condition F.
type Tree struct {
	Root    *PNode
	Cond    Condition
	byLabel map[int]*PNode
}

// New creates a pattern tree with a root node carrying the given label.
func New(rootLabel int) *Tree {
	root := &PNode{Label: rootLabel}
	return &Tree{Root: root, byLabel: map[int]*PNode{rootLabel: root}}
}

// AddChild adds a node with the given label under the parent label, connected
// by an edge of the given kind, and returns the new node.
func (t *Tree) AddChild(parentLabel, label int, kind EdgeKind) (*PNode, error) {
	p := t.Node(parentLabel)
	if p == nil {
		return nil, fmt.Errorf("pattern: unknown parent label %d", parentLabel)
	}
	if t.Node(label) != nil {
		return nil, fmt.Errorf("pattern: duplicate label %d", label)
	}
	n := &PNode{Label: label, Parent: p, EdgeIn: kind}
	p.Children = append(p.Children, n)
	t.byLabel[label] = n
	return n, nil
}

// MustAddChild is AddChild but panics on error; convenient in tests and
// examples where labels are literals.
func (t *Tree) MustAddChild(parentLabel, label int, kind EdgeKind) *PNode {
	n, err := t.AddChild(parentLabel, label, kind)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns the pattern node with the given label, or nil.
func (t *Tree) Node(label int) *PNode {
	return t.byLabel[label]
}

// Labels returns all node labels in ascending order.
func (t *Tree) Labels() []int {
	out := make([]int, 0, len(t.byLabel))
	for l := range t.byLabel {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// NodeCount returns the number of pattern nodes.
func (t *Tree) NodeCount() int { return len(t.byLabel) }

// Nodes returns all pattern nodes in preorder.
func (t *Tree) Nodes() []*PNode {
	var out []*PNode
	var rec func(*PNode)
	rec = func(n *PNode) {
		out = append(out, n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
	return out
}

// String renders the pattern tree in the textual syntax accepted by Parse.
func (t *Tree) String() string {
	var edges []string
	var rec func(*PNode)
	rec = func(n *PNode) {
		for _, c := range n.Children {
			edges = append(edges, fmt.Sprintf("#%d %s #%d", n.Label, c.EdgeIn, c.Label))
			rec(c)
		}
	}
	rec(t.Root)
	s := strings.Join(edges, ", ")
	if len(edges) == 0 {
		s = fmt.Sprintf("#%d", t.Root.Label)
	}
	if t.Cond != nil {
		s += " :: " + t.Cond.String()
	}
	return s
}

// ---- Conditions ----

// Op enumerates the operators of atomic conditions. The comparison and
// similarity operators follow Section 5.1.1 of the paper.
type Op string

const (
	OpEq         Op = "="
	OpNe         Op = "!="
	OpLe         Op = "<="
	OpGe         Op = ">="
	OpLt         Op = "<"
	OpGt         Op = ">"
	OpSim        Op = "~"           // similarTo: true iff an SEO node contains both operands
	OpInstanceOf Op = "instance_of" // value is in dom of / below a type
	OpIsa        Op = "isa"         // reachability in the isa hierarchy
	OpPartOf     Op = "part_of"     // reachability in the part-of hierarchy
	OpSubtypeOf  Op = "subtype_of"
	OpAbove      Op = "above"
	OpBelow      Op = "below"
	// OpContains is the TAX-baseline substring operator the paper uses in
	// place of isa conditions when running TAX ("for isa ... 'contains' ...
	// used for TAX").
	OpContains Op = "contains"
)

// TermKind says how a Term is to be resolved during evaluation.
type TermKind int

const (
	// TermAttr refers to a pattern node attribute: #Label.Attr where Attr is
	// "tag" or "content".
	TermAttr TermKind = iota
	// TermValue is a literal value, optionally typed ("3":int).
	TermValue
	// TermType names a type from the type system.
	TermType
)

// Term is one operand of an atomic condition.
type Term struct {
	Kind  TermKind
	Label int    // pattern node label (TermAttr)
	Attr  string // "tag" or "content"    (TermAttr)
	Value string // literal value          (TermValue)
	Type  string // type name              (TermValue with annotation, TermType)
}

// Attr constructs a node-attribute term #label.attr.
func Attr(label int, attr string) Term {
	return Term{Kind: TermAttr, Label: label, Attr: attr}
}

// Value constructs an untyped literal term.
func Value(v string) Term { return Term{Kind: TermValue, Value: v, Type: "string"} }

// TypedValue constructs a typed literal term v:typ.
func TypedValue(v, typ string) Term { return Term{Kind: TermValue, Value: v, Type: typ} }

// TypeTerm constructs a term naming a type.
func TypeTerm(name string) Term { return Term{Kind: TermType, Type: name} }

func (t Term) String() string {
	switch t.Kind {
	case TermAttr:
		return fmt.Sprintf("#%d.%s", t.Label, t.Attr)
	case TermType:
		return t.Type
	default:
		if t.Type != "" && t.Type != "string" {
			return quoteValue(t.Value) + ":" + t.Type
		}
		return quoteValue(t.Value)
	}
}

// quoteValue renders a string literal using the condition lexer's escape
// rules (backslash escapes only " and \; all other bytes are literal), so
// String output always re-parses to the same value.
func quoteValue(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		if v[i] == '"' || v[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(v[i])
	}
	b.WriteByte('"')
	return b.String()
}

// Condition is a selection condition: atomic conditions closed under
// conjunction, disjunction and negation.
type Condition interface {
	String() string
	// Labels appends the pattern-node labels mentioned by the condition.
	Labels(dst []int) []int
}

// Atomic is a simple condition X op Y.
type Atomic struct {
	X  Term
	Op Op
	Y  Term
}

func (a *Atomic) String() string {
	return fmt.Sprintf("%s %s %s", a.X, a.Op, a.Y)
}

func (a *Atomic) Labels(dst []int) []int {
	if a.X.Kind == TermAttr {
		dst = append(dst, a.X.Label)
	}
	if a.Y.Kind == TermAttr {
		dst = append(dst, a.Y.Label)
	}
	return dst
}

// And is a conjunction of conditions.
type And struct{ Conds []Condition }

func (c *And) String() string { return joinConds(c.Conds, " & ") }
func (c *And) Labels(dst []int) []int {
	for _, s := range c.Conds {
		dst = s.Labels(dst)
	}
	return dst
}

// Or is a disjunction of conditions.
type Or struct{ Conds []Condition }

func (c *Or) String() string { return joinConds(c.Conds, " | ") }
func (c *Or) Labels(dst []int) []int {
	for _, s := range c.Conds {
		dst = s.Labels(dst)
	}
	return dst
}

// Not negates a condition.
type Not struct{ Cond Condition }

func (c *Not) String() string { return "!(" + c.Cond.String() + ")" }
func (c *Not) Labels(dst []int) []int {
	return c.Cond.Labels(dst)
}

func joinConds(cs []Condition, sep string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Atoms returns every atomic condition in c, left to right.
func Atoms(c Condition) []*Atomic {
	var out []*Atomic
	var rec func(Condition)
	rec = func(c Condition) {
		switch v := c.(type) {
		case *Atomic:
			out = append(out, v)
		case *And:
			for _, s := range v.Conds {
				rec(s)
			}
		case *Or:
			for _, s := range v.Conds {
				rec(s)
			}
		case *Not:
			rec(v.Cond)
		}
	}
	if c != nil {
		rec(c)
	}
	return out
}

// Rewrite returns a deep copy of c with every atomic condition replaced by
// f(atom). f may return the atom unchanged (it is copied anyway).
func Rewrite(c Condition, f func(*Atomic) Condition) Condition {
	switch v := c.(type) {
	case *Atomic:
		cp := *v
		return f(&cp)
	case *And:
		out := &And{Conds: make([]Condition, len(v.Conds))}
		for i, s := range v.Conds {
			out.Conds[i] = Rewrite(s, f)
		}
		return out
	case *Or:
		out := &Or{Conds: make([]Condition, len(v.Conds))}
		for i, s := range v.Conds {
			out.Conds[i] = Rewrite(s, f)
		}
		return out
	case *Not:
		return &Not{Cond: Rewrite(v.Cond, f)}
	default:
		return c
	}
}
