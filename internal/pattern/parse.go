package pattern

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the textual pattern-tree syntax:
//
//	#1 pc #2, #1 ad #3 :: #1.tag = "inproceedings" & #2.tag = "title"
//
// Edges are comma-separated "#parent (pc|ad) #child" items; the first parent
// mentioned becomes the root. A single-node pattern is written "#1". The
// optional "::" clause gives the selection condition (see ParseCondition).
func Parse(src string) (*Tree, error) {
	structPart := src
	condPart := ""
	if i := strings.Index(src, "::"); i >= 0 {
		structPart = src[:i]
		condPart = src[i+2:]
	}
	t, err := parseStructure(structPart)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(condPart) != "" {
		cond, err := ParseCondition(condPart)
		if err != nil {
			return nil, err
		}
		t.Cond = cond
	}
	if err := t.validateCondLabels(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustParse is Parse but panics on error.
func MustParse(src string) *Tree {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) validateCondLabels() error {
	if t.Cond == nil {
		return nil
	}
	for _, l := range t.Cond.Labels(nil) {
		if t.Node(l) == nil {
			return fmt.Errorf("pattern: condition mentions unknown node #%d", l)
		}
	}
	return nil
}

func parseStructure(src string) (*Tree, error) {
	items := strings.Split(src, ",")
	var t *Tree
	for _, item := range items {
		fields := strings.Fields(item)
		switch len(fields) {
		case 0:
			continue
		case 1:
			label, err := parseLabelToken(fields[0])
			if err != nil {
				return nil, err
			}
			if t != nil {
				return nil, fmt.Errorf("pattern: lone node %q after edges", fields[0])
			}
			t = New(label)
		case 3:
			p, err := parseLabelToken(fields[0])
			if err != nil {
				return nil, err
			}
			c, err := parseLabelToken(fields[2])
			if err != nil {
				return nil, err
			}
			var kind EdgeKind
			switch fields[1] {
			case "pc":
				kind = PC
			case "ad":
				kind = AD
			default:
				return nil, fmt.Errorf("pattern: edge kind %q (want pc or ad)", fields[1])
			}
			if t == nil {
				t = New(p)
			}
			if _, err := t.AddChild(p, c, kind); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("pattern: cannot parse edge %q", strings.TrimSpace(item))
		}
	}
	if t == nil {
		return nil, fmt.Errorf("pattern: empty pattern")
	}
	return t, nil
}

func parseLabelToken(tok string) (int, error) {
	if !strings.HasPrefix(tok, "#") {
		return 0, fmt.Errorf("pattern: node reference %q must start with #", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil {
		return 0, fmt.Errorf("pattern: node reference %q: %v", tok, err)
	}
	return n, nil
}

// ---- condition lexer ----

type tokKind int

const (
	tokEOF tokKind = iota
	tokNodeRef
	tokString
	tokIdent
	tokOp
	tokLParen
	tokRParen
	tokAnd
	tokOr
	tokNot
	tokColon
	tokDot
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			l.pos++
		case ch == '#':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == start+1 {
				return nil, fmt.Errorf("pattern: bare # at offset %d", start)
			}
			l.emit(tokNodeRef, l.src[start:l.pos], start)
		case ch == '"':
			start := l.pos
			l.pos++
			var b strings.Builder
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
					l.pos++
				}
				b.WriteByte(l.src[l.pos])
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("pattern: unterminated string at offset %d", start)
			}
			l.pos++ // closing quote
			l.emit(tokString, b.String(), start)
		case ch == '(':
			l.emit(tokLParen, "(", l.pos)
			l.pos++
		case ch == ')':
			l.emit(tokRParen, ")", l.pos)
			l.pos++
		case ch == '&':
			l.emit(tokAnd, "&", l.pos)
			l.pos++
		case ch == '|':
			l.emit(tokOr, "|", l.pos)
			l.pos++
		case ch == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokOp, "!=", l.pos)
				l.pos += 2
			} else {
				l.emit(tokNot, "!", l.pos)
				l.pos++
			}
		case ch == ':':
			l.emit(tokColon, ":", l.pos)
			l.pos++
		case ch == '.':
			l.emit(tokDot, ".", l.pos)
			l.pos++
		case ch == '=' || ch == '~':
			l.emit(tokOp, string(ch), l.pos)
			l.pos++
		case ch == '<' || ch == '>':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokOp, l.src[l.pos:l.pos+2], l.pos)
				l.pos += 2
			} else {
				l.emit(tokOp, string(ch), l.pos)
				l.pos++
			}
		case isIdentStart(rune(ch)):
			start := l.pos
			for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			switch word {
			case "isa", "part_of", "instance_of", "subtype_of", "above", "below", "contains":
				l.emit(tokOp, word, start)
			case "and", "AND":
				l.emit(tokAnd, word, start)
			case "or", "OR":
				l.emit(tokOr, word, start)
			case "not", "NOT":
				l.emit(tokNot, word, start)
			default:
				l.emit(tokIdent, word, start)
			}
		default:
			return nil, fmt.Errorf("pattern: unexpected character %q at offset %d", ch, l.pos)
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || r == '*' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r) || r == '-'
}

// ---- condition parser (recursive descent) ----

type parser struct {
	toks []token
	i    int
}

// ParseCondition parses a selection condition such as
//
//	#1.tag = "inproceedings" & (#3.content ~ "J. Ullman" | #3.content isa "author")
//
// Operators: = != <= >= < > ~ isa part_of instance_of subtype_of above below
// contains. Boolean connectives: & | ! (or the words and/or/not). Terms are
// node attributes (#i.tag, #i.content), string literals (optionally typed,
// "3":int), or bare identifiers naming types.
func ParseCondition(src string) (Condition, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	c, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("pattern: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return c, nil
}

// MustParseCondition is ParseCondition but panics on error.
func MustParseCondition(src string) Condition {
	c, err := ParseCondition(src)
	if err != nil {
		panic(err)
	}
	return c
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) parseOr() (Condition, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	conds := []Condition{left}
	for p.peek().kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		conds = append(conds, right)
	}
	if len(conds) == 1 {
		return conds[0], nil
	}
	return &Or{Conds: conds}, nil
}

func (p *parser) parseAnd() (Condition, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	conds := []Condition{left}
	for p.peek().kind == tokAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		conds = append(conds, right)
	}
	if len(conds) == 1 {
		return conds[0], nil
	}
	return &And{Conds: conds}, nil
}

func (p *parser) parseUnary() (Condition, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		c, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Cond: c}, nil
	case tokLParen:
		p.next()
		c, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("pattern: expected ) at offset %d", p.peek().pos)
		}
		p.next()
		return c, nil
	default:
		return p.parseAtomic()
	}
}

func (p *parser) parseAtomic() (Condition, error) {
	x, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	if opTok.kind != tokOp {
		return nil, fmt.Errorf("pattern: expected operator at offset %d, got %q", opTok.pos, opTok.text)
	}
	y, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &Atomic{X: x, Op: Op(opTok.text), Y: y}, nil
}

func (p *parser) parseTerm() (Term, error) {
	t := p.next()
	switch t.kind {
	case tokNodeRef:
		label, err := strconv.Atoi(t.text[1:])
		if err != nil {
			return Term{}, fmt.Errorf("pattern: bad node ref %q: %v", t.text, err)
		}
		if p.peek().kind != tokDot {
			return Term{}, fmt.Errorf("pattern: expected .tag or .content after %s", t.text)
		}
		p.next()
		attr := p.next()
		if attr.kind != tokIdent || (attr.text != "tag" && attr.text != "content") {
			return Term{}, fmt.Errorf("pattern: expected tag or content after %s., got %q", t.text, attr.text)
		}
		return Attr(label, attr.text), nil
	case tokString:
		term := Value(t.text)
		if p.peek().kind == tokColon {
			p.next()
			typ := p.next()
			if typ.kind != tokIdent {
				return Term{}, fmt.Errorf("pattern: expected type name after : at offset %d", typ.pos)
			}
			term.Type = typ.text
		}
		return term, nil
	case tokIdent:
		return TypeTerm(t.text), nil
	default:
		return Term{}, fmt.Errorf("pattern: expected term at offset %d, got %q", t.pos, t.text)
	}
}
