package pattern

import (
	"strings"
	"testing"
)

func TestBuildTree(t *testing.T) {
	p := New(1)
	if _, err := p.AddChild(1, 2, PC); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddChild(1, 3, AD); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddChild(3, 4, PC); err != nil {
		t.Fatal(err)
	}
	if p.NodeCount() != 4 {
		t.Errorf("NodeCount = %d, want 4", p.NodeCount())
	}
	if got := p.Labels(); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("Labels = %v", got)
	}
	if p.Node(3).EdgeIn != AD {
		t.Error("edge kind of node 3 should be ad")
	}
	if p.Node(4).Parent != p.Node(3) {
		t.Error("parent wiring broken")
	}
	if len(p.Nodes()) != 4 {
		t.Errorf("Nodes() length = %d", len(p.Nodes()))
	}
}

func TestBuildTreeErrors(t *testing.T) {
	p := New(1)
	if _, err := p.AddChild(9, 2, PC); err == nil {
		t.Error("unknown parent should fail")
	}
	p.MustAddChild(1, 2, PC)
	if _, err := p.AddChild(1, 2, PC); err == nil {
		t.Error("duplicate label should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddChild should panic on error")
		}
	}()
	p.MustAddChild(1, 2, PC)
}

func TestParseStructure(t *testing.T) {
	p, err := Parse(`#1 pc #2, #1 ad #3`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Label != 1 {
		t.Errorf("root = %d", p.Root.Label)
	}
	if p.Node(2).EdgeIn != PC || p.Node(3).EdgeIn != AD {
		t.Error("edge kinds wrong")
	}
	// Single node pattern.
	p2, err := Parse(`#7`)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Root.Label != 7 || p2.NodeCount() != 1 {
		t.Error("single-node pattern broken")
	}
}

func TestParseStructureErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`1 pc 2`,                   // missing #
		`#1 xx #2`,                 // bad edge kind
		`#1 pc`,                    // incomplete
		`#1 pc #2, #9`,             // lone node after edges
		`#1 pc #2, #3 pc #2`,       // duplicate child label
		`#1 pc #2 :: #5.tag = "x"`, // condition references unknown node
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseCondition(t *testing.T) {
	c, err := ParseCondition(`#1.tag = "inproceedings" & (#2.content ~ "J. Ullman" | !(#2.content = "x")) & #3.content isa "person"`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := c.(*And)
	if !ok {
		t.Fatalf("top level should be And, got %T", c)
	}
	if len(and.Conds) != 3 {
		t.Fatalf("And arity = %d, want 3", len(and.Conds))
	}
	atoms := Atoms(c)
	if len(atoms) != 4 {
		t.Fatalf("Atoms = %d, want 4", len(atoms))
	}
	if atoms[0].Op != OpEq || atoms[1].Op != OpSim || atoms[3].Op != OpIsa {
		t.Errorf("operators wrong: %v %v %v", atoms[0].Op, atoms[1].Op, atoms[3].Op)
	}
	labels := c.Labels(nil)
	if len(labels) != 4 {
		t.Errorf("Labels = %v", labels)
	}
}

func TestParseConditionOperators(t *testing.T) {
	ops := []string{"=", "!=", "<=", ">=", "<", ">", "~", "isa", "part_of",
		"instance_of", "subtype_of", "above", "below", "contains"}
	for _, op := range ops {
		src := `#1.content ` + op + ` "v"`
		c, err := ParseCondition(src)
		if err != nil {
			t.Errorf("ParseCondition(%q): %v", src, err)
			continue
		}
		a := c.(*Atomic)
		if string(a.Op) != op {
			t.Errorf("op parsed as %q, want %q", a.Op, op)
		}
	}
}

func TestParseConditionTerms(t *testing.T) {
	c := MustParseCondition(`"3":int <= #2.content`)
	a := c.(*Atomic)
	if a.X.Kind != TermValue || a.X.Type != "int" || a.X.Value != "3" {
		t.Errorf("typed value term wrong: %+v", a.X)
	}
	if a.Y.Kind != TermAttr || a.Y.Label != 2 || a.Y.Attr != "content" {
		t.Errorf("attr term wrong: %+v", a.Y)
	}

	c2 := MustParseCondition(`#1.content instance_of int`)
	a2 := c2.(*Atomic)
	if a2.Y.Kind != TermType || a2.Y.Type != "int" {
		t.Errorf("type term wrong: %+v", a2.Y)
	}
}

func TestParseConditionWordConnectives(t *testing.T) {
	c, err := ParseCondition(`#1.tag = "a" and #1.content = "b" or not #1.content = "c"`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*Or); !ok {
		t.Fatalf("top level should be Or, got %T", c)
	}
}

func TestParseConditionEscapes(t *testing.T) {
	c := MustParseCondition(`#1.content = "say \"hi\""`)
	a := c.(*Atomic)
	if a.Y.Value != `say "hi"` {
		t.Errorf("escaped string = %q", a.Y.Value)
	}
}

func TestParseConditionErrors(t *testing.T) {
	for _, src := range []string{
		`#1.tag =`,              // missing rhs
		`#1.tag "x"`,            // missing operator
		`#1.badattr = "x"`,      // bad attribute
		`#1.tag = "unclosed`,    // unterminated string
		`(#1.tag = "x"`,         // missing paren
		`#1.tag = "x" trailing`, // trailing garbage
		`#.tag = "x"`,           // bare #
		`# 1.tag = "x"`,         // split ref
	} {
		if _, err := ParseCondition(src); err == nil {
			t.Errorf("ParseCondition(%q) should fail", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`#1 pc #2, #1 ad #3 :: #1.tag = "inproceedings" & #2.content ~ "J. Ullman"`,
		`#1 :: #1.content isa "person"`,
		`#1 pc #2 :: (#1.tag = "a") | !(#2.content <= "3":int)`,
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		p2 := MustParse(p1.String())
		if p1.String() != p2.String() {
			t.Errorf("String round trip unstable:\n%s\nvs\n%s", p1.String(), p2.String())
		}
		if p1.NodeCount() != p2.NodeCount() {
			t.Errorf("round trip changed node count for %q", src)
		}
	}
}

func TestRewrite(t *testing.T) {
	c := MustParseCondition(`#1.tag = "a" & (#2.content ~ "b" | !(#3.content isa "c"))`)
	// Replace every ~ with =.
	out := Rewrite(c, func(a *Atomic) Condition {
		if a.Op == OpSim {
			a.Op = OpEq
		}
		return a
	})
	for _, a := range Atoms(out) {
		if a.Op == OpSim {
			t.Error("rewrite left a ~ atom")
		}
	}
	// Original untouched.
	found := false
	for _, a := range Atoms(c) {
		if a.Op == OpSim {
			found = true
		}
	}
	if !found {
		t.Error("rewrite mutated the original condition")
	}
}

func TestTermString(t *testing.T) {
	cases := map[string]string{
		Attr(3, "tag").String():         "#3.tag",
		Value("x").String():             `"x"`,
		TypedValue("3", "int").String(): `"3":int`,
		TypeTerm("int").String():        "int",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("Term.String() = %q, want %q", got, want)
		}
	}
	if !strings.Contains(MustParseCondition(`#1.tag != "x"`).String(), "!=") {
		t.Error("condition String should include operator")
	}
}
