package tax

import (
	"repro/internal/pattern"
	"repro/internal/tree"
)

// ProdRootTag is the tag of the fresh root node the product operator
// introduces, named as in the paper's Figure 7.
const ProdRootTag = "tax_prod_root"

// OpStats counts the work one algebra operator performed — the per-operator
// hook the executor's trace layer aggregates into query-level statistics.
type OpStats struct {
	TreesIn    int // input trees examined
	Embeddings int // satisfying embeddings found
	Witnesses  int // witness trees emitted
}

// Add accumulates another operator's counts.
func (s *OpStats) Add(o OpStats) {
	s.TreesIn += o.TreesIn
	s.Embeddings += o.Embeddings
	s.Witnesses += o.Witnesses
}

// Select implements TAX selection σ_{P,SL}: for every tree of db and every
// embedding of p satisfying p's condition, emit the witness tree; pattern
// labels in sl carry their full subtrees into the output.
func Select(dst *tree.Collection, db []*tree.Tree, p *pattern.Tree, sl []int, ev Evaluator) ([]*tree.Tree, error) {
	out, _, err := SelectTraced(dst, db, p, sl, ev)
	return out, err
}

// SelectTraced is Select plus operator statistics: how many trees were
// examined, how many satisfying embeddings were found and how many witness
// trees were emitted.
func SelectTraced(dst *tree.Collection, db []*tree.Tree, p *pattern.Tree, sl []int, ev Evaluator) ([]*tree.Tree, OpStats, error) {
	c := Compile(p)
	st := OpStats{TreesIn: len(db)}
	var out []*tree.Tree
	for _, t := range db {
		bindings, err := c.Embeddings(t, ev)
		if err != nil {
			return nil, st, err
		}
		st.Embeddings += len(bindings)
		for _, b := range bindings {
			if wt := c.WitnessTree(dst, t, b, sl); wt != nil {
				out = append(out, wt)
			}
		}
	}
	st.Witnesses = len(out)
	return out, st, nil
}

// Project implements TAX projection π_{P,PL}: per input tree, keep every
// node that is the image of a PL-label under some satisfying embedding,
// structured by the closest-ancestor relation. Each induced forest root
// becomes one output tree (the paper's Figure 5 shows a collection).
func Project(dst *tree.Collection, db []*tree.Tree, p *pattern.Tree, pl []int, ev Evaluator) ([]*tree.Tree, error) {
	c := Compile(p)
	var out []*tree.Tree
	for _, t := range db {
		bindings, err := c.Embeddings(t, ev)
		if err != nil {
			return nil, err
		}
		selected := map[*tree.Node]bool{}
		for _, b := range bindings {
			for _, l := range pl {
				if img := b.Get(l); img != nil {
					selected[img] = true
				}
			}
		}
		out = append(out, buildFromNodeSet(dst, t, selected, nil)...)
	}
	return out, nil
}

// Product implements the TAX cross product: one tree per pair, under a fresh
// tax_prod_root node whose left child is the first tree's root and right
// child the second's.
func Product(dst *tree.Collection, a, b []*tree.Tree) []*tree.Tree {
	out := make([]*tree.Tree, 0, len(a)*len(b))
	for _, ta := range a {
		for _, tb := range b {
			root := dst.NewNode(ProdRootTag, "")
			root.AddChild(ta.Root.CloneInto(dst))
			root.AddChild(tb.Root.CloneInto(dst))
			out = append(out, &tree.Tree{Root: root})
		}
	}
	return out
}

// Join is condition join: product followed by selection (Section 2.1.2).
func Join(dst *tree.Collection, a, b []*tree.Tree, p *pattern.Tree, sl []int, ev Evaluator) ([]*tree.Tree, error) {
	return Select(dst, Product(dst, a, b), p, sl, ev)
}

// Union returns the set union of two tree collections under the value-based
// tree equality of Section 5.1.2, preserving first-occurrence order.
func Union(dst *tree.Collection, a, b []*tree.Tree) []*tree.Tree {
	seen := map[string]bool{}
	var out []*tree.Tree
	for _, t := range append(append([]*tree.Tree{}, a...), b...) {
		k := t.Canonical()
		if !seen[k] {
			seen[k] = true
			out = append(out, t.CloneInto(dst))
		}
	}
	return out
}

// Intersect returns trees of a that are equal to some tree of b,
// deduplicated.
func Intersect(dst *tree.Collection, a, b []*tree.Tree) []*tree.Tree {
	inB := map[string]bool{}
	for _, t := range b {
		inB[t.Canonical()] = true
	}
	seen := map[string]bool{}
	var out []*tree.Tree
	for _, t := range a {
		k := t.Canonical()
		if inB[k] && !seen[k] {
			seen[k] = true
			out = append(out, t.CloneInto(dst))
		}
	}
	return out
}

// Difference returns trees of a equal to no tree of b, deduplicated.
func Difference(dst *tree.Collection, a, b []*tree.Tree) []*tree.Tree {
	inB := map[string]bool{}
	for _, t := range b {
		inB[t.Canonical()] = true
	}
	seen := map[string]bool{}
	var out []*tree.Tree
	for _, t := range a {
		k := t.Canonical()
		if !inB[k] && !seen[k] {
			seen[k] = true
			out = append(out, t.CloneInto(dst))
		}
	}
	return out
}
