package tax

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pattern"
	"repro/internal/tree"
)

// Baseline is the plain-TAX condition evaluator: no ontology, no similarity.
// Following the paper's experimental setup ("for isa and similarTo
// conditions, 'contains' and exact match are used for TAX respectively"),
// ontology operators degrade to substring containment and the similarity
// operator to exact equality:
//
//	=, !=            exact string (or integer) comparison
//	<=, >=, <, >     integer comparison when both sides parse, else string
//	~                exact equality
//	isa, part_of,
//	below, above,
//	instance_of,
//	subtype_of       substring containment (above is reversed containment)
//	contains         substring containment
type Baseline struct{}

// EvalAtomic implements Evaluator.
func (Baseline) EvalAtomic(a *pattern.Atomic, b Binding) (bool, error) {
	x, err := resolveTerm(a.X, b)
	if err != nil {
		return false, err
	}
	y, err := resolveTerm(a.Y, b)
	if err != nil {
		return false, err
	}
	switch a.Op {
	case pattern.OpEq:
		return x == y, nil
	case pattern.OpNe:
		return x != y, nil
	case pattern.OpSim:
		return x == y, nil
	case pattern.OpLe:
		return CompareValues(x, y) <= 0, nil
	case pattern.OpGe:
		return CompareValues(x, y) >= 0, nil
	case pattern.OpLt:
		return CompareValues(x, y) < 0, nil
	case pattern.OpGt:
		return CompareValues(x, y) > 0, nil
	case pattern.OpContains, pattern.OpIsa, pattern.OpPartOf,
		pattern.OpBelow, pattern.OpInstanceOf, pattern.OpSubtypeOf:
		return containsFold(x, y), nil
	case pattern.OpAbove:
		return containsFold(y, x), nil
	default:
		return false, fmt.Errorf("tax: unsupported operator %q", a.Op)
	}
}

// resolveTerm produces the term's value under the binding (the X^h mapping
// of Section 5.1.1 restricted to what plain TAX can see).
func resolveTerm(t pattern.Term, b Binding) (string, error) {
	switch t.Kind {
	case pattern.TermAttr:
		n := b.Get(t.Label)
		if n == nil {
			return "", fmt.Errorf("tax: unbound pattern node #%d", t.Label)
		}
		return nodeAttr(n, t.Attr), nil
	case pattern.TermValue:
		return t.Value, nil
	case pattern.TermType:
		return t.Type, nil
	default:
		return "", fmt.Errorf("tax: unknown term kind %d", t.Kind)
	}
}

func nodeAttr(n *tree.Node, attr string) string {
	if attr == "tag" {
		return n.Tag
	}
	return n.Content
}

// CompareValues compares as integers when both parse, else as strings. It
// is the ordering plain TAX uses and the fallback ordering TOSS uses when no
// least common supertype exists.
func CompareValues(x, y string) int {
	xi, errX := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
	yi, errY := strconv.ParseInt(strings.TrimSpace(y), 10, 64)
	if errX == nil && errY == nil {
		switch {
		case xi < yi:
			return -1
		case xi > yi:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(x, y)
}

// containsFold is case-insensitive substring containment; the "contains"
// operator the TAX baseline substitutes for ontology conditions.
func containsFold(haystack, needle string) bool {
	return strings.Contains(strings.ToLower(haystack), strings.ToLower(needle))
}
