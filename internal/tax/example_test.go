package tax_test

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/tax"
	"repro/internal/tree"
)

// Plain TAX selection: the pattern tree of the paper's Figure 3 against a
// small DBLP fragment. Exact matching keeps precision at 100 % but, as the
// paper argues, cannot reach name variants or semantic relatives — that is
// what the TOSS evaluator (internal/core) adds on top of this same algebra.
func ExampleSelect() {
	col := tree.NewCollection()
	doc, _ := col.ParseXMLString(`<dblp>
	  <inproceedings>
	    <author>Paolo Ciancarini</author>
	    <title>Coordinating Multiagent Applications</title>
	    <year>1999</year>
	  </inproceedings>
	  <inproceedings>
	    <author>Elisa Bertino</author>
	    <title>Securing XML Documents</title>
	    <year>2000</year>
	  </inproceedings>
	</dblp>`)

	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "year" & #2.content = "1999"`)
	out, err := tax.Select(tree.NewCollection(), []*tree.Tree{doc}, p, []int{1}, tax.Baseline{})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(out))
	fmt.Println(out[0].Root.ChildContent("author"))
	// Output:
	// 1
	// Paolo Ciancarini
}

// The product operator builds tax_prod_root pairs, as in the paper's
// Figure 7; condition join is product followed by selection.
func ExampleProduct() {
	col := tree.NewCollection()
	a, _ := col.ParseXMLString(`<a>1</a>`)
	b, _ := col.ParseXMLString(`<b>2</b>`)
	prod := tax.Product(tree.NewCollection(), []*tree.Tree{a}, []*tree.Tree{b})
	fmt.Println(prod[0].Root.Tag)
	fmt.Println(len(prod[0].Root.Children))
	// Output:
	// tax_prod_root
	// 2
}
