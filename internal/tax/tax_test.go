package tax

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/tree"
)

// dblpXML is the flavour of the paper's Figure 1 sample.
const dblpXML = `<dblp>
  <inproceedings key="d1">
    <author>Paolo Ciancarini</author>
    <author>Robert Tolksdorf</author>
    <title>Coordinating Multiagent Applications on the WWW</title>
    <pages>362-366</pages>
    <year>1999</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="d2">
    <author>Elisa Bertino</author>
    <title>Securing XML Documents</title>
    <pages>121-130</pages>
    <year>2000</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="d3">
    <author>Sanjay Agrawal</author>
    <title>Materialized View and Index Selection Tool for Microsoft SQL Server 2000</title>
    <pages>608</pages>
    <year>2001</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
</dblp>`

const sigmodXML = `<ProceedingsPage>
  <articles>
    <article key="s1">
      <title>Materialized View and Index Selection Tool for Microsoft SQL Server 2000</title>
      <author>S. Agrawal</author>
      <conference>International Conference on Management of Data</conference>
      <confYear>2001</confYear>
    </article>
  </articles>
</ProceedingsPage>`

func loadDoc(t *testing.T, xml string) (*tree.Collection, *tree.Tree) {
	t.Helper()
	c := tree.NewCollection()
	tr, err := c.ParseXMLString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return c, tr
}

func TestEmbeddingsPC(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	// Figure 3's pattern: inproceedings with a year child equal to 1999.
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "year" & #2.content = "1999"`)
	c := Compile(p)
	bindings, err := c.Embeddings(doc, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 1 {
		t.Fatalf("embeddings = %d, want 1", len(bindings))
	}
	b := bindings[0]
	if b.Get(1).Tag != "inproceedings" || b.Get(2).Content != "1999" {
		t.Error("binding maps wrong nodes")
	}
	if b.Get(99) != nil {
		t.Error("unknown label should be nil")
	}
}

func TestEmbeddingsAD(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	// ad edge: year anywhere below dblp.
	p := pattern.MustParse(`#1 ad #2 :: #1.tag = "dblp" & #2.tag = "year"`)
	c := Compile(p)
	bindings, err := c.Embeddings(doc, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 3 {
		t.Fatalf("ad embeddings = %d, want 3", len(bindings))
	}
	// pc edge from dblp to year must find nothing (year is a grandchild).
	p2 := pattern.MustParse(`#1 pc #2 :: #1.tag = "dblp" & #2.tag = "year"`)
	bindings2, err := Compile(p2).Embeddings(doc, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings2) != 0 {
		t.Fatalf("pc should not match grandchildren, got %d", len(bindings2))
	}
}

func TestEmbeddingsMultiAuthor(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	// d1 has two authors: two embeddings for an author pattern node.
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #1.tag != "x"`)
	bindings, err := Compile(p).Embeddings(doc, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 4 {
		t.Fatalf("embeddings = %d, want 4 (2+1+1)", len(bindings))
	}
}

func TestEmbeddingsDisjunction(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "year" & (#2.content = "1999" | #2.content = "2000")`)
	bindings, err := Compile(p).Embeddings(doc, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 2 {
		t.Fatalf("disjunction embeddings = %d, want 2", len(bindings))
	}
	// Negation.
	p2 := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "year" & !(#2.content = "1999")`)
	bindings2, err := Compile(p2).Embeddings(doc, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings2) != 2 {
		t.Fatalf("negation embeddings = %d, want 2", len(bindings2))
	}
}

// TestSelectWitness reproduces the selection semantics of Example 3: the
// witness tree contains the pattern images; SL labels carry full subtrees.
func TestSelectWitness(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "year" & #2.content = "1999"`)
	dst := tree.NewCollection()

	// Without SL: witness holds just the two matched nodes.
	out, err := Select(dst, []*tree.Tree{doc}, p, nil, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("selection returned %d trees", len(out))
	}
	if got := out[0].NodeCount(); got != 2 {
		t.Errorf("witness without SL has %d nodes, want 2", got)
	}
	if out[0].Root.Tag != "inproceedings" {
		t.Errorf("witness root = %q", out[0].Root.Tag)
	}

	// With SL = {1}: all descendants of the inproceedings node come along.
	out2, err := Select(dst, []*tree.Tree{doc}, p, []int{1}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if got := out2[0].NodeCount(); got != 8 {
		t.Errorf("witness with SL has %d nodes, want 8 (@key+2 authors+title+pages+year+booktitle+root)", got)
	}
	if got := out2[0].Root.ChildContent("title"); got == "" {
		t.Error("full subtree missing title")
	}
}

// TestWitnessOrderPreserved: witness trees preserve the source preorder
// (Section 2.1.1, third bullet).
func TestWitnessOrderPreserved(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	p := pattern.MustParse(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "year" & #3.tag = "author" & #3.content = "Paolo Ciancarini"`)
	dst := tree.NewCollection()
	out, err := Select(dst, []*tree.Tree{doc}, p, nil, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("selection returned %d trees", len(out))
	}
	kids := out[0].Root.Children
	if len(kids) != 2 || kids[0].Tag != "author" || kids[1].Tag != "year" {
		t.Fatalf("witness children out of source order: %v %v", kids[0].Tag, kids[1].Tag)
	}
}

// TestProject mirrors Example 5: project authors and titles of 1999 papers.
func TestProject(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	p := pattern.MustParse(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "year" & #2.content = "1999" & #3.tag = "author"`)
	dst := tree.NewCollection()
	out, err := Project(dst, []*tree.Tree{doc}, p, []int{1, 3}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("projection returned %d trees, want 1", len(out))
	}
	root := out[0].Root
	if root.Tag != "inproceedings" {
		t.Errorf("projection root = %q", root.Tag)
	}
	if len(root.Children) != 2 {
		t.Fatalf("projection kept %d children, want the 2 authors", len(root.Children))
	}
	for _, c := range root.Children {
		if c.Tag != "author" {
			t.Errorf("projected child = %q", c.Tag)
		}
	}
	// PL without the ancestor: forest of authors, one output tree each.
	out2, err := Project(dst, []*tree.Tree{doc}, p, []int{3}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 2 {
		t.Fatalf("author-only projection returned %d trees, want 2", len(out2))
	}
}

// TestProductAndJoin mirrors Example 6 / Figure 7: join DBLP and the SIGMOD
// page on equal titles.
func TestProductAndJoin(t *testing.T) {
	_, dblp := loadDoc(t, dblpXML)
	_, sigmod := loadDoc(t, sigmodXML)
	dst := tree.NewCollection()
	prod := Product(dst, []*tree.Tree{dblp}, []*tree.Tree{sigmod})
	if len(prod) != 1 {
		t.Fatalf("product size = %d", len(prod))
	}
	root := prod[0].Root
	if root.Tag != ProdRootTag || len(root.Children) != 2 {
		t.Fatalf("product root malformed: %q with %d children", root.Tag, len(root.Children))
	}
	if root.Children[0].Tag != "dblp" || root.Children[1].Tag != "ProceedingsPage" {
		t.Error("product children order wrong")
	}

	p := pattern.MustParse(`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
		`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
		`#4.tag = "title" & #5.tag = "title" & #4.content = #5.content`)
	out, err := Join(dst, []*tree.Tree{dblp}, []*tree.Tree{sigmod}, p, nil, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("join returned %d witnesses, want 1 (the Microsoft SQL Server paper)", len(out))
	}
	titles := out[0].FindTag("title")
	if len(titles) != 2 {
		t.Fatalf("join witness has %d titles", len(titles))
	}
	if titles[0].Content != titles[1].Content {
		t.Error("joined titles differ")
	}
}

func makeTrees(t *testing.T, contents ...string) (*tree.Collection, []*tree.Tree) {
	t.Helper()
	c := tree.NewCollection()
	var out []*tree.Tree
	for _, s := range contents {
		tr, err := c.ParseXMLString(fmt.Sprintf("<item>%s</item>", s))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	return c, out
}

func TestSetOperations(t *testing.T) {
	_, ab := makeTrees(t, "a", "b")
	_, bc := makeTrees(t, "b", "c")
	dst := tree.NewCollection()

	union := Union(dst, ab, bc)
	if len(union) != 3 {
		t.Errorf("union size = %d, want 3", len(union))
	}
	inter := Intersect(dst, ab, bc)
	if len(inter) != 1 || inter[0].Root.Content != "b" {
		t.Errorf("intersection wrong: %d", len(inter))
	}
	diff := Difference(dst, ab, bc)
	if len(diff) != 1 || diff[0].Root.Content != "a" {
		t.Errorf("difference wrong: %d", len(diff))
	}
	// Duplicates collapse.
	_, dup := makeTrees(t, "x", "x", "x")
	if got := Union(dst, dup, nil); len(got) != 1 {
		t.Errorf("union should deduplicate, got %d", len(got))
	}
}

func TestBaselineOperators(t *testing.T) {
	c := tree.NewCollection()
	n := c.NewNode("title", "Securing XML Documents")
	b := BindingOf(map[int]*tree.Node{1: n})
	cases := []struct {
		cond string
		want bool
	}{
		{`#1.content = "Securing XML Documents"`, true},
		{`#1.content = "securing xml documents"`, false}, // = is case-sensitive
		{`#1.content != "x"`, true},
		{`#1.content ~ "Securing XML Documents"`, true}, // TAX ~ is exact
		{`#1.content ~ "Securing XML Document"`, false},
		{`#1.content contains "XML"`, true},
		{`#1.content contains "xml"`, true}, // contains is case-insensitive
		{`#1.content isa "xml"`, true},      // isa degrades to contains
		{`#1.content below "xml"`, true},
		// above reverses the containment: the longer string is the more
		// specific term, which sits below the shorter one.
		{`#1.content above "Securing XML Documents and more"`, true},
		{`#1.content above "Unrelated"`, false},
		{`#1.tag = "title"`, true},
		{`#1.content part_of "XML"`, true},
	}
	for _, tc := range cases {
		cond := pattern.MustParseCondition(tc.cond)
		got, err := EvalCondition(cond, b, Baseline{})
		if err != nil {
			t.Errorf("%s: %v", tc.cond, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.cond, got, tc.want)
		}
	}
}

func TestBaselineNumericComparison(t *testing.T) {
	c := tree.NewCollection()
	n := c.NewNode("year", "1999")
	b := BindingOf(map[int]*tree.Node{1: n})
	cases := []struct {
		cond string
		want bool
	}{
		{`#1.content <= "2000"`, true},
		{`#1.content >= "2000"`, false},
		{`#1.content < "2000"`, true},
		{`#1.content > "200"`, true}, // numeric, not lexicographic
	}
	for _, tc := range cases {
		cond := pattern.MustParseCondition(tc.cond)
		got, err := EvalCondition(cond, b, Baseline{})
		if err != nil {
			t.Fatalf("%s: %v", tc.cond, err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.cond, got, tc.want)
		}
	}
	if CompareValues("9", "10") >= 0 {
		t.Error("numeric comparison broken")
	}
	if CompareValues("a", "b") >= 0 {
		t.Error("string comparison broken")
	}
}

func TestBaselineUnboundError(t *testing.T) {
	b := BindingOf(nil)
	cond := pattern.MustParseCondition(`#1.content = "x"`)
	if _, err := EvalCondition(cond, b, Baseline{}); err == nil {
		t.Error("unbound node must error")
	}
}

// randomItems builds random single-node trees over a tiny alphabet so that
// collisions occur.
func randomItems(rng *rand.Rand, c *tree.Collection, n int) []*tree.Tree {
	var out []*tree.Tree
	for i := 0; i < n; i++ {
		node := c.NewNode("item", string(rune('a'+rng.Intn(4))))
		tr := &tree.Tree{Root: node}
		c.Add(tr)
		out = append(out, tr)
	}
	return out
}

// TestQuickSetOpIdentities: classical identities hold under tree value
// equality: A∪B = B∪A (as sets), A∩B ⊆ A, A−A = ∅, (A−B)∩B = ∅.
func TestQuickSetOpIdentities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := tree.NewCollection()
		a := randomItems(rng, c, rng.Intn(6))
		b := randomItems(rng, c, rng.Intn(6))
		dst := tree.NewCollection()
		canon := func(ts []*tree.Tree) map[string]bool {
			m := map[string]bool{}
			for _, t := range ts {
				m[t.Canonical()] = true
			}
			return m
		}
		eq := func(x, y map[string]bool) bool {
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if !y[k] {
					return false
				}
			}
			return true
		}
		if !eq(canon(Union(dst, a, b)), canon(Union(dst, b, a))) {
			return false
		}
		interSet := canon(Intersect(dst, a, b))
		aSet := canon(a)
		for k := range interSet {
			if !aSet[k] {
				return false
			}
		}
		if len(Difference(dst, a, a)) != 0 {
			return false
		}
		dmb := canon(Difference(dst, a, b))
		bSet := canon(b)
		for k := range dmb {
			if bSet[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWitnessPreordersSource: for random embeddings, witness trees list
// nodes in source preorder.
func TestQuickWitnessPreordersSource(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	p := pattern.MustParse(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "booktitle"`)
	dst := tree.NewCollection()
	out, err := Select(dst, []*tree.Tree{doc}, p, nil, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range out {
		kids := w.Root.Children
		if len(kids) != 2 || kids[0].Tag != "author" || kids[1].Tag != "booktitle" {
			t.Fatalf("witness order wrong: %v", kids)
		}
	}
}

// TestWitnessClosestAncestorCollapse: with ad edges, intermediate source
// nodes are absent from the witness, so the witness parent is the closest
// selected ancestor — dblp adopts year directly even though inproceedings
// sits between them in the source.
func TestWitnessClosestAncestorCollapse(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	p := pattern.MustParse(`#1 ad #2 :: #1.tag = "dblp" & #2.tag = "year" & #2.content = "1999"`)
	dst := tree.NewCollection()
	out, err := Select(dst, []*tree.Tree{doc}, p, nil, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("witnesses = %d", len(out))
	}
	w := out[0]
	if w.Root.Tag != "dblp" {
		t.Fatalf("witness root = %q", w.Root.Tag)
	}
	if len(w.Root.Children) != 1 || w.Root.Children[0].Tag != "year" {
		t.Fatalf("witness should collapse to dblp -> year, got %v", w.Root.Children)
	}
	if w.NodeCount() != 2 {
		t.Fatalf("witness nodes = %d, want 2", w.NodeCount())
	}
}

// TestSelectMultipleSLLabels: several SL labels each carry their subtree.
func TestSelectMultipleSLLabels(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	p := pattern.MustParse(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "year" & #2.content = "1999" & #3.tag = "author" & #3.content = "Paolo Ciancarini"`)
	dst := tree.NewCollection()
	out, err := Select(dst, []*tree.Tree{doc}, p, []int{2, 3}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("witnesses = %d", len(out))
	}
	// year and author are leaves, so SL adds nothing beyond themselves; the
	// witness holds root + 2 children.
	if out[0].NodeCount() != 3 {
		t.Errorf("witness nodes = %d, want 3", out[0].NodeCount())
	}
	// SL on the root carries everything.
	out2, err := Select(dst, []*tree.Tree{doc}, p, []int{1}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if out2[0].NodeCount() != 8 {
		t.Errorf("root-SL witness nodes = %d, want 8", out2[0].NodeCount())
	}
}

// TestProjectNoMatches: projection over trees without matches yields nothing.
func TestProjectNoMatches(t *testing.T) {
	_, doc := loadDoc(t, dblpXML)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "nonexistent"`)
	out, err := Project(tree.NewCollection(), []*tree.Tree{doc}, p, []int{2}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("projection = %d trees, want 0", len(out))
	}
}

// TestSelectTracedStats: the traced selection agrees with Select and counts
// trees, embeddings and witnesses; OpStats accumulate with Add.
func TestSelectTracedStats(t *testing.T) {
	dst, doc := loadDoc(t, dblpXML)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`)
	plain, err := Select(dst, []*tree.Tree{doc}, p, nil, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	traced, st, err := SelectTraced(dst, []*tree.Tree{doc}, p, nil, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain) {
		t.Fatalf("traced %d vs plain %d answers", len(traced), len(plain))
	}
	if st.TreesIn != 1 {
		t.Errorf("TreesIn = %d", st.TreesIn)
	}
	// d1 has two authors: 4 embeddings across the document's 3 papers.
	if st.Embeddings != 4 || st.Witnesses != 4 || st.Witnesses != len(traced) {
		t.Errorf("stats = %+v for %d answers", st, len(traced))
	}
	var acc OpStats
	acc.Add(st)
	acc.Add(st)
	if acc.TreesIn != 2 || acc.Embeddings != 8 || acc.Witnesses != 8 {
		t.Errorf("Add accumulated %+v", acc)
	}
}
