// Package tax implements the TAX tree algebra of Jagadish et al. that the
// paper extends: pattern-tree embeddings and witness trees (Section 2.1.1),
// and the operators selection, projection, product, join, union,
// intersection and difference (Section 2.1.2). The algebra is parameterised
// by a condition Evaluator so that plain TAX (exact/contains matching) and
// TOSS (SEO-aware matching, internal/core) share the same machinery.
package tax

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/tree"
)

// Binding maps pattern-node labels to data nodes: one embedding h.
type Binding struct {
	nodes []*tree.Node
	idx   map[int]int
}

// Get returns the data node bound to the pattern label, or nil.
func (b Binding) Get(label int) *tree.Node {
	i, ok := b.idx[label]
	if !ok {
		return nil
	}
	return b.nodes[i]
}

// Evaluator decides atomic selection conditions for a given embedding.
// Implementations exist for plain TAX (Baseline) and for TOSS
// (internal/core.Evaluator).
type Evaluator interface {
	// EvalAtomic evaluates one atomic condition under the binding.
	EvalAtomic(a *pattern.Atomic, b Binding) (bool, error)
}

// Compiled is a pattern tree prepared for repeated embedding search: labels
// are mapped to dense indices and node-local conjunctive atoms are extracted
// for candidate pre-filtering.
type Compiled struct {
	P      *pattern.Tree
	labels []int
	idx    map[int]int
	// local[label] lists atoms mentioning only that label which occur on
	// the top-level conjunctive spine of the condition; they must hold for
	// any embedding, so they pre-filter candidates.
	local map[int][]*pattern.Atomic
}

// Compile prepares a pattern tree for embedding search.
func Compile(p *pattern.Tree) *Compiled {
	c := &Compiled{P: p, idx: map[int]int{}, local: map[int][]*pattern.Atomic{}}
	for _, n := range p.Nodes() {
		c.idx[n.Label] = len(c.labels)
		c.labels = append(c.labels, n.Label)
	}
	for _, atom := range conjunctiveSpine(p.Cond) {
		ls := atom.Labels(nil)
		if len(ls) == 0 {
			continue
		}
		same := true
		for _, l := range ls[1:] {
			if l != ls[0] {
				same = false
				break
			}
		}
		if same {
			c.local[ls[0]] = append(c.local[ls[0]], atom)
		}
	}
	return c
}

// conjunctiveSpine returns the atoms that appear as direct conjuncts of the
// condition (recursing through And only) — these are necessary conditions
// for the whole formula.
func conjunctiveSpine(c pattern.Condition) []*pattern.Atomic {
	var out []*pattern.Atomic
	var rec func(pattern.Condition)
	rec = func(c pattern.Condition) {
		switch v := c.(type) {
		case *pattern.Atomic:
			out = append(out, v)
		case *pattern.And:
			for _, s := range v.Conds {
				rec(s)
			}
		}
	}
	if c != nil {
		rec(c)
	}
	return out
}

func (c *Compiled) newBinding() Binding {
	return Binding{nodes: make([]*tree.Node, len(c.labels)), idx: c.idx}
}

func (b Binding) clone() Binding {
	nodes := make([]*tree.Node, len(b.nodes))
	copy(nodes, b.nodes)
	return Binding{nodes: nodes, idx: b.idx}
}

// Embeddings enumerates every embedding of the pattern into the data tree
// whose witness satisfies the pattern's condition under ev. The bindings are
// returned in lexicographic preorder of the images.
func (c *Compiled) Embeddings(t *tree.Tree, ev Evaluator) ([]Binding, error) {
	if t == nil || t.Root == nil {
		return nil, nil
	}
	// Candidate sets per pattern node from node-local atoms.
	cand := map[int][]*tree.Node{}
	var firstErr error
	for _, pn := range c.P.Nodes() {
		atoms := c.local[pn.Label]
		var nodes []*tree.Node
		t.Walk(func(n *tree.Node) bool {
			ok, err := c.nodeSatisfies(atoms, pn.Label, n, ev)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if ok {
				nodes = append(nodes, n)
			}
			return true
		})
		if firstErr != nil {
			return nil, firstErr
		}
		if len(nodes) == 0 {
			return nil, nil
		}
		cand[pn.Label] = nodes
	}

	var out []Binding
	binding := c.newBinding()
	var assign func(order []*pattern.PNode, k int) error
	assign = func(order []*pattern.PNode, k int) error {
		if k == len(order) {
			ok := true
			var err error
			if c.P.Cond != nil {
				ok, err = evalCondition(c.P.Cond, binding, ev)
				if err != nil {
					return err
				}
			}
			if ok {
				out = append(out, binding.clone())
			}
			return nil
		}
		pn := order[k]
		var pool []*tree.Node
		if pn.Parent == nil {
			pool = cand[pn.Label]
		} else {
			parentImg := binding.Get(pn.Parent.Label)
			pool = childPool(parentImg, pn.EdgeIn, cand[pn.Label])
		}
		for _, n := range pool {
			binding.nodes[c.idx[pn.Label]] = n
			if err := assign(order, k+1); err != nil {
				return err
			}
		}
		binding.nodes[c.idx[pn.Label]] = nil
		return nil
	}
	if err := assign(c.P.Nodes(), 0); err != nil {
		return nil, err
	}
	return out, nil
}

// childPool restricts candidates to children (pc) or proper descendants (ad)
// of the parent image.
func childPool(parent *tree.Node, kind pattern.EdgeKind, cand []*tree.Node) []*tree.Node {
	var out []*tree.Node
	for _, n := range cand {
		switch kind {
		case pattern.PC:
			if n.Parent == parent {
				out = append(out, n)
			}
		case pattern.AD:
			if n.IsDescendantOf(parent) {
				out = append(out, n)
			}
		}
	}
	return out
}

// nodeSatisfies checks node-local atoms against a tentative assignment of
// label → n.
func (c *Compiled) nodeSatisfies(atoms []*pattern.Atomic, label int, n *tree.Node, ev Evaluator) (bool, error) {
	if len(atoms) == 0 {
		return true, nil
	}
	b := c.newBinding()
	b.nodes[c.idx[label]] = n
	for _, a := range atoms {
		ok, err := ev.EvalAtomic(a, b)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// evalCondition evaluates a full boolean condition under a binding.
func evalCondition(c pattern.Condition, b Binding, ev Evaluator) (bool, error) {
	switch v := c.(type) {
	case *pattern.Atomic:
		return ev.EvalAtomic(v, b)
	case *pattern.And:
		for _, s := range v.Conds {
			ok, err := evalCondition(s, b, ev)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case *pattern.Or:
		for _, s := range v.Conds {
			ok, err := evalCondition(s, b, ev)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case *pattern.Not:
		ok, err := evalCondition(v.Cond, b, ev)
		return !ok, err
	default:
		return false, fmt.Errorf("tax: unknown condition type %T", c)
	}
}

// EvalCondition is the exported form used by other packages (e.g. the TOSS
// query executor post-filter).
func EvalCondition(c pattern.Condition, b Binding, ev Evaluator) (bool, error) {
	return evalCondition(c, b, ev)
}

// BindingOf builds a one-off binding from explicit label→node pairs; useful
// in tests.
func BindingOf(pairs map[int]*tree.Node) Binding {
	b := Binding{idx: map[int]int{}}
	for l, n := range pairs {
		b.idx[l] = len(b.nodes)
		b.nodes = append(b.nodes, n)
	}
	return b
}
