package tax

import (
	"sort"

	"repro/internal/tree"
)

// preorderIndex assigns each node of t its preorder position; witness trees
// must preserve this order (Section 2.1.1).
func preorderIndex(t *tree.Tree) map[*tree.Node]int {
	idx := map[*tree.Node]int{}
	i := 0
	t.Walk(func(n *tree.Node) bool {
		idx[n] = i
		i++
		return true
	})
	return idx
}

// buildFromNodeSet materialises the induced forest over a set of source
// nodes: each selected node becomes a copy whose parent is the copy of its
// closest selected ancestor; sibling order follows source preorder. Nodes
// whose entire subtree should be included (selection's SL semantics) are
// listed in fullSubtree. Returns the forest roots in source preorder.
func buildFromNodeSet(dst *tree.Collection, t *tree.Tree, selected map[*tree.Node]bool, fullSubtree map[*tree.Node]bool) []*tree.Tree {
	if len(selected) == 0 {
		return nil
	}
	order := preorderIndex(t)
	nodes := make([]*tree.Node, 0, len(selected))
	for n := range selected {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return order[nodes[i]] < order[nodes[j]] })

	copies := map[*tree.Node]*tree.Node{}
	var roots []*tree.Tree
	for _, n := range nodes {
		var cp *tree.Node
		if fullSubtree[n] {
			cp = n.CloneInto(dst)
		} else {
			cp = dst.NewNode(n.Tag, n.Content)
			cp.TagType = n.TagType
			cp.ContentType = n.ContentType
		}
		copies[n] = cp
		anc := closestSelectedAncestor(n, selected)
		if anc == nil {
			roots = append(roots, &tree.Tree{Root: cp})
			continue
		}
		parentCp := copies[anc]
		if fullSubtree[anc] {
			// The ancestor was cloned with its whole subtree; n's copy is
			// already inside it (n is a descendant of anc). Drop the
			// standalone copy to avoid duplication.
			continue
		}
		parentCp.AddChild(cp)
	}
	return roots
}

func closestSelectedAncestor(n *tree.Node, selected map[*tree.Node]bool) *tree.Node {
	for p := n.Parent; p != nil; p = p.Parent {
		if selected[p] {
			return p
		}
	}
	return nil
}

// WitnessTree materialises the witness tree of one embedding: the images of
// all pattern nodes, structured by the closest-ancestor relation, preserving
// source order. Pattern labels listed in slDescendants additionally carry
// their full subtrees (the SL semantics of selection).
func (c *Compiled) WitnessTree(dst *tree.Collection, t *tree.Tree, b Binding, slDescendants []int) *tree.Tree {
	selected := map[*tree.Node]bool{}
	full := map[*tree.Node]bool{}
	for _, pn := range c.P.Nodes() {
		img := b.Get(pn.Label)
		if img != nil {
			selected[img] = true
		}
	}
	for _, l := range slDescendants {
		if img := b.Get(l); img != nil {
			full[img] = true
		}
	}
	// Nodes inside a full subtree are covered by the clone; remove them from
	// the explicit set so buildFromNodeSet does not duplicate them — except
	// the subtree roots themselves.
	for n := range selected {
		if n2 := insideFullSubtree(n, full); n2 {
			delete(selected, n)
		}
	}
	for n := range full {
		selected[n] = true
	}
	roots := buildFromNodeSet(dst, t, selected, full)
	if len(roots) == 0 {
		return nil
	}
	// The pattern root's image is an ancestor of every other image, so the
	// forest has exactly one root.
	wt := roots[0]
	wt.SrcSeq = t.SrcSeq
	return wt
}

// insideFullSubtree reports whether n is a proper descendant of a node whose
// full subtree is being cloned.
func insideFullSubtree(n *tree.Node, full map[*tree.Node]bool) bool {
	for p := n.Parent; p != nil; p = p.Parent {
		if full[p] {
			return true
		}
	}
	return false
}
