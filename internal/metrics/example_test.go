package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// Quality is the paper's √(precision · recall).
func ExampleScore() {
	truth := map[string]bool{"p1": true, "p2": true, "p3": true, "p4": true}
	r := metrics.Score([]string{"p1", "p2", "p9"}, truth)
	fmt.Printf("P=%.3f R=%.3f Q=%.3f\n", r.Precision(), r.Recall(), r.Quality())
	// Output:
	// P=0.667 R=0.500 Q=0.577
}
