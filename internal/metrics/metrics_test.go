package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScore(t *testing.T) {
	relevant := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	r := Score([]string{"a", "b", "x"}, relevant)
	if r.Returned != 3 || r.Correct != 2 || r.Relevant != 4 {
		t.Fatalf("Score = %+v", r)
	}
	if got := r.Precision(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("Precision = %g", got)
	}
	if got := r.Recall(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Recall = %g", got)
	}
	if got := r.Quality(); math.Abs(got-math.Sqrt(1.0/3)) > 1e-9 {
		t.Errorf("Quality = %g", got)
	}
	if got := r.F1(); math.Abs(got-2*(2.0/3)*0.5/((2.0/3)+0.5)) > 1e-9 {
		t.Errorf("F1 = %g", got)
	}
}

func TestScoreDeduplicates(t *testing.T) {
	relevant := map[string]bool{"a": true}
	r := Score([]string{"a", "a", "a"}, relevant)
	if r.Returned != 1 || r.Correct != 1 {
		t.Errorf("duplicates not collapsed: %+v", r)
	}
}

func TestEmptyConventions(t *testing.T) {
	// Empty answer: precision 1 (nothing wrong), recall 0 (missed all).
	r := Score(nil, map[string]bool{"a": true})
	if r.Precision() != 1 || r.Recall() != 0 {
		t.Errorf("empty answer conventions: P=%g R=%g", r.Precision(), r.Recall())
	}
	// Empty truth: recall 1 by convention.
	r2 := Score([]string{"x"}, map[string]bool{})
	if r2.Recall() != 1 || r2.Precision() != 0 {
		t.Errorf("empty truth conventions: P=%g R=%g", r2.Precision(), r2.Recall())
	}
	r3 := Score[string](nil, nil)
	if r3.Quality() != math.Sqrt(1) {
		t.Errorf("vacuous quality = %g", r3.Quality())
	}
	if r3.F1() != 1 {
		t.Errorf("vacuous F1 = %g", r3.F1())
	}
}

func TestIntKeys(t *testing.T) {
	r := Score([]int{1, 2}, map[int]bool{2: true, 3: true})
	if r.Correct != 1 || r.Returned != 2 || r.Relevant != 2 {
		t.Errorf("int-keyed score = %+v", r)
	}
}

// TestQuickBounds: precision, recall, quality and F1 always lie in [0, 1].
func TestQuickBounds(t *testing.T) {
	f := func(returned []uint8, relevantList []uint8) bool {
		relevant := map[uint8]bool{}
		for _, v := range relevantList {
			relevant[v] = true
		}
		r := Score(returned, relevant)
		for _, v := range []float64{r.Precision(), r.Recall(), r.Quality(), r.F1()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		// Correct can never exceed either denominator.
		return r.Correct <= r.Returned && r.Correct <= r.Relevant
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
