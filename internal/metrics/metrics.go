// Package metrics implements the answer-quality measures of the paper's
// evaluation: precision (correct answers returned / answers returned),
// recall (correct answers returned / correct answers that exist) and the
// quality measure √(precision · recall) from [14].
package metrics

import "math"

// Result summarises one query evaluation against ground truth.
type Result struct {
	Returned int // answers the system returned
	Correct  int // of those, how many are correct
	Relevant int // total correct answers that exist
}

// Score compares a returned answer set with the ground-truth relevant set,
// using any comparable key type (paper IDs in our experiments).
func Score[K comparable](returned []K, relevant map[K]bool) Result {
	r := Result{Returned: len(returned), Relevant: len(relevant)}
	seen := map[K]bool{}
	for _, k := range returned {
		if seen[k] {
			r.Returned-- // count distinct answers, as the paper scores papers
			continue
		}
		seen[k] = true
		if relevant[k] {
			r.Correct++
		}
	}
	return r
}

// Precision returns correct/returned; by convention an empty answer set has
// precision 1 (it contains no wrong answers).
func (r Result) Precision() float64 {
	if r.Returned == 0 {
		return 1
	}
	return float64(r.Correct) / float64(r.Returned)
}

// Recall returns correct/relevant; with no relevant answers recall is 1.
func (r Result) Recall() float64 {
	if r.Relevant == 0 {
		return 1
	}
	return float64(r.Correct) / float64(r.Relevant)
}

// Quality is √(precision · recall), the paper's answer-quality measure.
func (r Result) Quality() float64 {
	return math.Sqrt(r.Precision() * r.Recall())
}

// F1 is the usual harmonic mean, included for completeness.
func (r Result) F1() float64 {
	p, rec := r.Precision(), r.Recall()
	if p+rec == 0 {
		return 0
	}
	return 2 * p * rec / (p + rec)
}
