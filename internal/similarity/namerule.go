package similarity

import "strings"

// NameRule is the rule-based person-name measure the paper sketches for the
// SIGMOD/DBLP application: "in our SIGMOD/DBLP application ... we could write
// a set of rules describing when two names are considered similar". It
// understands the ways bibliographies mangle author names:
//
//   - abbreviated given names: "J. Ullman" vs "Jeffrey Ullman" (distance 1
//     per abbreviated token);
//   - dropped middle names: "Jeffrey Ullman" vs "Jeffrey D. Ullman"
//     (distance 1 per missing token);
//   - concatenation/spacing errors: "GianLuigi Ferrari" vs "Gian Luigi
//     Ferrari" (distance 1);
//   - typos in any token, charged via edit distance.
//
// Different surnames are penalised heavily (2 per edit), so "Marco Ferrari"
// vs "Mauro Ferrari" (same surname, 2-edit given names) sits near the
// SEA threshold while "Marco Ferrari" vs "GianLuigi Ferrari" is far away —
// mirroring the d_s examples in Section 2.2 of the paper.
//
// Strings that do not look like person names (zero or one token) fall back
// to Fallback (Levenshtein if nil). NameRule is not strong.
type NameRule struct {
	Fallback Measure
}

func (NameRule) Name() string { return "name-rule" }
func (NameRule) Strong() bool { return false }

func (n NameRule) Distance(x, y string) float64 {
	if x == y {
		return 0
	}
	fb := n.Fallback
	if fb == nil {
		fb = Levenshtein{}
	}
	tx := Tokenize(x)
	ty := Tokenize(y)
	if len(tx) < 2 || len(ty) < 2 {
		return fb.Distance(x, y)
	}
	// Concatenation/spacing error: identical once whitespace is removed.
	if strings.Join(tx, "") == strings.Join(ty, "") {
		return 1
	}
	surX, surY := tx[len(tx)-1], ty[len(ty)-1]
	givenX, givenY := tx[:len(tx)-1], ty[:len(ty)-1]
	score := 2 * float64(editDistance([]rune(surX), []rune(surY), true))
	return score + alignGiven(givenX, givenY)
}

// alignGiven scores two given-name token sequences with a token-level
// alignment: matching tokens are free, abbreviations and shortened forms
// cost 1, near-miss tokens cost their (capped) edit distance, and dropped
// tokens cost 1 each. The alignment (rather than a positional zip) keeps
// "Alberto M. Garcia" vs "A. Garcia" cheap: initial + dropped middle.
func alignGiven(a, b []string) float64 {
	dp := make([][]float64, len(a)+1)
	for i := range dp {
		dp[i] = make([]float64, len(b)+1)
	}
	for i := 1; i <= len(a); i++ {
		dp[i][0] = dp[i-1][0] + gapCost(a[i-1])
	}
	for j := 1; j <= len(b); j++ {
		dp[0][j] = dp[0][j-1] + gapCost(b[j-1])
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			m := dp[i-1][j-1] + tokenCost(a[i-1], b[j-1])
			if v := dp[i-1][j] + gapCost(a[i-1]); v < m {
				m = v
			}
			if v := dp[i][j-1] + gapCost(b[j-1]); v < m {
				m = v
			}
			dp[i][j] = m
		}
	}
	return dp[len(a)][len(b)]
}

// gapCost charges 1 for dropping an initial (a one-letter token, the usual
// dropped middle name) and 2 for dropping a full token, so that two entirely
// different given names do not look like a pair of cheap drops.
func gapCost(tok string) float64 {
	if len(tok) <= 1 {
		return 1
	}
	return 2
}

// tokenCost scores one given-name token pair.
func tokenCost(a, b string) float64 {
	switch {
	case a == b:
		return 0
	case isInitialOf(a, b) || isInitialOf(b, a):
		return 1 // abbreviated given name
	case isPrefixName(a, b) || isPrefixName(b, a):
		return 1 // shortened given name ("Jeff" for "Jeffrey")
	default:
		d := float64(editDistance([]rune(a), []rune(b), true))
		if d > 4 {
			d = 4
		}
		return d
	}
}

// isInitialOf reports whether a is a single-letter initial of b.
func isInitialOf(a, b string) bool {
	return len(a) == 1 && len(b) > 1 && b[0] == a[0]
}

// isPrefixName reports whether a is a shortened form of b: a proper prefix
// of at least three letters ("jeff" of "jeffrey").
func isPrefixName(a, b string) bool {
	return len(a) >= 3 && len(b) > len(a) && strings.HasPrefix(b, a)
}
