package similarity

import (
	"fmt"
	"testing"
)

func corpusTFIDF() *TFIDF {
	docs := []string{
		"Efficient Relational Query Processing for Database Systems",
		"Scalable XML Query Processing in Database Systems",
		"Database Systems Architecture for Streaming Data",
		"Secure Database Systems in Practice",
		"A Rare Gemstone Cutting Technique",
	}
	return NewTFIDF(1, docs)
}

func TestTFIDFStatistics(t *testing.T) {
	m := corpusTFIDF()
	if m.DocCount() != 5 {
		t.Fatalf("DocCount = %d", m.DocCount())
	}
	if m.DocFrequency("database") != 4 {
		t.Errorf("df(database) = %d, want 4", m.DocFrequency("database"))
	}
	if m.DocFrequency("gemstone") != 1 {
		t.Errorf("df(gemstone) = %d, want 1", m.DocFrequency("gemstone"))
	}
	if m.DocFrequency("unknown-token") != 0 {
		t.Errorf("df(unknown) = %d", m.DocFrequency("unknown-token"))
	}
}

func TestTFIDFWeighting(t *testing.T) {
	m := corpusTFIDF()
	// Sharing only ubiquitous tokens keeps strings far apart; sharing a
	// rare token pulls them together.
	common := m.Distance("Database Systems", "Database Systems Architecture")
	rare := m.Distance("Gemstone Catalog", "Gemstone Inventory")
	ubiquitousOnly := m.Distance("Database Systems Alpha", "Database Systems Beta")
	if !(common < ubiquitousOnly) {
		t.Errorf("extra unshared token should increase distance: %g vs %g", common, ubiquitousOnly)
	}
	if !(rare < ubiquitousOnly) {
		t.Errorf("shared rare token (%g) should bind tighter than shared common tokens (%g)", rare, ubiquitousOnly)
	}
	if d := m.Distance("same title", "same title"); d != 0 {
		t.Errorf("identity distance = %g", d)
	}
	if d := m.Distance("alpha beta", "gamma delta"); d != 1 {
		t.Errorf("disjoint distance = %g, want 1", d)
	}
	// Symmetry.
	if m.Distance("a b", "b c") != m.Distance("b c", "a b") {
		t.Error("asymmetric")
	}
}

func TestTFIDFEdgeCases(t *testing.T) {
	empty := NewTFIDF(0, nil)
	if d := empty.Distance("", ""); d != 0 {
		t.Errorf("empty identity = %g", d)
	}
	if d := empty.Distance("x", ""); d != 1 {
		t.Errorf("vs empty = %g", d)
	}
	if empty.Name() != "tfidf" || empty.Strong() {
		t.Error("metadata wrong")
	}
	// Works as a Measure through the generic interface.
	var m Measure = corpusTFIDF()
	if m.Distance("Database Systems", "Database Systems") != 0 {
		t.Error("interface use broken")
	}
}

func TestTFIDFScaling(t *testing.T) {
	docs := []string{"a b", "c d"}
	m1 := NewTFIDF(1, docs)
	m10 := NewTFIDF(10, docs)
	d1 := m1.Distance("a x", "a y")
	d10 := m10.Distance("a x", "a y")
	if fmt.Sprintf("%.6f", d10) != fmt.Sprintf("%.6f", d1*10) {
		t.Errorf("scaling broken: %g vs %g", d10, d1*10)
	}
}
