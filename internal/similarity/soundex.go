package similarity

import "strings"

// Soundex is a phonetic measure: two strings are at distance 0 when every
// token of one shares its Soundex code with the positionally corresponding
// token of the other, and otherwise pay 2 per mismatching token (capped at
// 6). Phonetic matching catches transcription variants that edit distance
// misses ("Meier" vs "Mayer") and is a staple of bibliographic name
// cleaning. Not strong.
type Soundex struct{}

func (Soundex) Name() string { return "soundex" }
func (Soundex) Strong() bool { return false }

func (s Soundex) Distance(x, y string) float64 {
	if x == y {
		return 0
	}
	tx := Tokenize(x)
	ty := Tokenize(y)
	if len(tx) == 0 && len(ty) == 0 {
		return 0
	}
	long, short := tx, ty
	if len(ty) > len(tx) {
		long, short = ty, tx
	}
	var d float64
	for i, a := range long {
		if i >= len(short) {
			d += 1 // missing token
			continue
		}
		if SoundexCode(a) != SoundexCode(short[i]) {
			d += 2
		}
	}
	if d > 6 {
		return 6
	}
	return d
}

// SoundexCode computes the classic 4-character Soundex code of a word
// (letters only; non-ASCII letters are ignored for coding purposes).
func SoundexCode(word string) string {
	word = strings.ToUpper(word)
	var letters []byte
	for i := 0; i < len(word); i++ {
		if word[i] >= 'A' && word[i] <= 'Z' {
			letters = append(letters, word[i])
		}
	}
	if len(letters) == 0 {
		return "0000"
	}
	code := []byte{letters[0]}
	prev := soundexDigit(letters[0])
	for _, ch := range letters[1:] {
		d := soundexDigit(ch)
		switch {
		case d == 0:
			// vowels and h/w/y reset or pass through
			if ch != 'H' && ch != 'W' {
				prev = 0
			}
		case d != prev:
			code = append(code, '0'+d)
			prev = d
		}
		if len(code) == 4 {
			break
		}
	}
	for len(code) < 4 {
		code = append(code, '0')
	}
	return string(code)
}

func soundexDigit(ch byte) byte {
	switch ch {
	case 'B', 'F', 'P', 'V':
		return 1
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return 2
	case 'D', 'T':
		return 3
	case 'L':
		return 4
	case 'M', 'N':
		return 5
	case 'R':
		return 6
	default:
		return 0
	}
}
