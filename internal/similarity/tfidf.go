package similarity

import (
	"math"
)

// TFIDF is a corpus-weighted cosine distance: tokens are weighted by
// tf · log(N/df) against document frequencies collected from a corpus, so
// ubiquitous tokens ("the", "conference") contribute little and rare tokens
// dominate. The paper cites exactly this family ("token-based distance like
// Jaccard similarity and cosine similarity" from the SecondString toolkit);
// the corpus statistics make it the measure of choice for titles. Build one
// with NewTFIDF over the document texts, then use it like any Measure.
//
// Distance is 1 - weighted cosine similarity, scaled by Scale (0 ⇒ 1).
// Unknown tokens fall back to df = 1 (maximally informative). Not strong.
type TFIDF struct {
	Scale float64

	df   map[string]int
	docs int
}

// NewTFIDF collects document frequencies from the given document texts.
func NewTFIDF(scale float64, docs []string) *TFIDF {
	m := &TFIDF{Scale: scale, df: map[string]int{}, docs: len(docs)}
	for _, d := range docs {
		seen := map[string]bool{}
		for _, tok := range Tokenize(d) {
			if !seen[tok] {
				seen[tok] = true
				m.df[tok]++
			}
		}
	}
	return m
}

func (*TFIDF) Name() string { return "tfidf" }
func (*TFIDF) Strong() bool { return false }

// idf returns log(1 + N/df): always positive, gently bounded for unknown
// tokens.
func (m *TFIDF) idf(tok string) float64 {
	df := m.df[tok]
	if df < 1 {
		df = 1
	}
	n := m.docs
	if n < 1 {
		n = 1
	}
	return math.Log(1 + float64(n)/float64(df))
}

func (m *TFIDF) Distance(x, y string) float64 {
	s := m.Scale
	if s == 0 {
		s = 1
	}
	if x == y {
		return 0
	}
	wx := m.weights(x)
	wy := m.weights(y)
	if len(wx) == 0 && len(wy) == 0 {
		return 0
	}
	var dot, nx, ny float64
	for tok, w := range wx {
		dot += w * wy[tok]
		nx += w * w
	}
	for _, w := range wy {
		ny += w * w
	}
	if nx == 0 || ny == 0 {
		return s
	}
	d := s * (1 - dot/(math.Sqrt(nx)*math.Sqrt(ny)))
	if d < 0 {
		return 0
	}
	return d
}

func (m *TFIDF) weights(s string) map[string]float64 {
	w := map[string]float64{}
	for _, tok := range Tokenize(s) {
		w[tok] += m.idf(tok)
	}
	return w
}

// DocFrequency exposes a token's document frequency (for tests and tuning).
func (m *TFIDF) DocFrequency(tok string) int { return m.df[tok] }

// DocCount returns the number of corpus documents the statistics come from.
func (m *TFIDF) DocCount() int { return m.docs }
