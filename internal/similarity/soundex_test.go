package similarity

import "testing"

func TestSoundexCodes(t *testing.T) {
	cases := map[string]string{
		"Robert":   "R163",
		"Rupert":   "R163",
		"Ashcraft": "A261",
		"Ashcroft": "A261",
		"Tymczak":  "T522",
		"Pfister":  "P236",
		"Honeyman": "H555",
		"Meier":    "M600",
		"Mayer":    "M600",
		"":         "0000",
		"123":      "0000",
	}
	for word, want := range cases {
		if got := SoundexCode(word); got != want {
			t.Errorf("SoundexCode(%q) = %q, want %q", word, got, want)
		}
	}
}

func TestSoundexDistance(t *testing.T) {
	var s Soundex
	if d := s.Distance("Robert Meier", "Rupert Mayer"); d != 0 {
		t.Errorf("phonetically identical names = %g, want 0", d)
	}
	if d := s.Distance("Robert Meier", "Robert Zhang"); d != 2 {
		t.Errorf("one mismatching token = %g, want 2", d)
	}
	if d := s.Distance("Robert", "Robert Meier"); d != 1 {
		t.Errorf("missing token = %g, want 1", d)
	}
	if d := s.Distance("a b c d", "w x y z"); d != 6 {
		t.Errorf("cap = %g, want 6", d)
	}
	if s.Distance("x", "x") != 0 {
		t.Error("identity")
	}
	if s.Distance("Meier", "Mayer") != s.Distance("Mayer", "Meier") {
		t.Error("symmetry")
	}
}

func TestSoundexRegistered(t *testing.T) {
	m := ByName("soundex")
	if m == nil || m.Name() != "soundex" || m.Strong() {
		t.Fatalf("soundex registration broken: %v", m)
	}
}
