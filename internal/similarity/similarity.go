// Package similarity implements string similarity measures (Definition 7 of
// the paper): non-negative symmetric distance functions with d(x,x)=0. A
// measure is "strong" when it additionally satisfies the triangle inequality,
// which lets the SEA algorithm use the single-representative shortcut of
// Lemma 1 when comparing ontology nodes that contain several strings.
//
// The paper deliberately does not invent new measures; it plugs in standard
// ones from the IR literature. This package provides Levenshtein,
// Damerau-Levenshtein, Jaro, Jaro-Winkler, Monge-Elkan, Jaccard, cosine and a
// rule-based person-name measure, all behind one Measure interface.
package similarity

import (
	"math"
	"strings"
	"unicode"
)

// Measure is a string similarity measure d_s. Smaller is more similar;
// Distance(x, x) must be 0 and Distance must be symmetric. Strong reports
// whether the measure satisfies the triangle inequality.
type Measure interface {
	// Name identifies the measure (used by CLIs and experiment reports).
	Name() string
	// Distance returns the distance between two strings.
	Distance(x, y string) float64
	// Strong reports whether the triangle inequality holds.
	Strong() bool
}

// ---- Levenshtein ----

// Levenshtein is the classic edit distance with unit costs. It is strong (a
// metric), as the paper notes in Section 4.3.
type Levenshtein struct{}

func (Levenshtein) Name() string { return "levenshtein" }
func (Levenshtein) Strong() bool { return true }

func (Levenshtein) Distance(x, y string) float64 {
	return float64(editDistance([]rune(x), []rune(y), false))
}

// Damerau is the Damerau-Levenshtein distance (edit distance with adjacent
// transposition). The restricted variant implemented here is still a metric.
type Damerau struct{}

func (Damerau) Name() string { return "damerau" }
func (Damerau) Strong() bool { return true }

func (Damerau) Distance(x, y string) float64 {
	return float64(editDistance([]rune(x), []rune(y), true))
}

// WithinK reports whether the Levenshtein distance of a and b is at most k,
// without ever materializing the full O(n·m) DP matrix: only the band of
// cells within k of the diagonal can hold a value ≤ k, so the computation is
// O(k·min(n,m)) with an early exit as soon as a whole band row exceeds k.
// This is the verifier stage of the similarity candidate index and the
// threshold path of Within for the edit-distance measures.
func WithinK(a, b string, k int) bool {
	return editDistanceWithin([]rune(a), []rune(b), k, false) <= k
}

// WithinKDamerau is WithinK for the restricted Damerau-Levenshtein distance.
func WithinKDamerau(a, b string, k int) bool {
	return editDistanceWithin([]rune(a), []rune(b), k, true) <= k
}

// editDistanceWithin returns the (Damerau-)Levenshtein distance of a and b if
// it is ≤ k, and any value > k otherwise. Cells outside the |i-j| ≤ k band
// are never computed (they cannot be ≤ k: every off-diagonal step costs at
// least one edit), and the scan stops as soon as the minimum of a band row
// exceeds k.
func editDistanceWithin(a, b []rune, k int, transpose bool) int {
	if k < 0 {
		return 1 // any positive value > k
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b)-len(a) > k {
		return k + 1
	}
	if len(a) == 0 {
		return len(b)
	}
	const inf = int(^uint(0) >> 2)
	width := len(b) + 1
	prev2 := make([]int, width)
	prev := make([]int, width)
	cur := make([]int, width)
	for j := 0; j <= len(b); j++ {
		if j > k {
			prev[j] = inf
		} else {
			prev[j] = j
		}
	}
	for i := 1; i <= len(a); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > len(b) {
			hi = len(b)
		}
		if lo > 1 {
			cur[lo-1] = inf
		} else {
			cur[0] = i
			if i > k {
				cur[0] = inf
			}
		}
		rowMin := cur[lo-1]
		for j := lo; j <= hi; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			if v := prev[j] + 1; v < m {
				m = v
			}
			if transpose && i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := prev2[j-2] + 1; t < m {
					m = t
				}
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if hi < len(b) {
			cur[hi+1] = inf
		}
		if rowMin > k {
			return k + 1
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[len(b)]
}

// editDistance computes Levenshtein (or, with transpose, restricted
// Damerau-Levenshtein) distance with two or three rolling rows.
func editDistance(a, b []rune, transpose bool) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev2 := make([]int, len(b)+1)
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := 0; j <= len(b); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
			if transpose && i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := prev2[j-2] + 1; t < m {
					m = t
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// ---- Jaro and Jaro-Winkler ----

// Jaro is the Jaro metric expressed as a distance: 1 - jaro similarity,
// scaled by Scale so that thresholds are comparable with edit distances
// (scale 10 means a Jaro similarity of 0.8 becomes distance 2.0). A zero
// Scale means 1. Jaro is not strong (no triangle inequality).
type Jaro struct {
	Scale float64
}

func (Jaro) Name() string { return "jaro" }
func (Jaro) Strong() bool { return false }

func (j Jaro) Distance(x, y string) float64 {
	s := j.Scale
	if s == 0 {
		s = 1
	}
	return s * (1 - jaroSim([]rune(x), []rune(y)))
}

// JaroWinkler boosts Jaro similarity for strings sharing a prefix.
type JaroWinkler struct {
	Scale        float64 // distance scale, like Jaro.Scale
	PrefixWeight float64 // typically 0.1; 0 means 0.1
}

func (JaroWinkler) Name() string { return "jaro-winkler" }
func (JaroWinkler) Strong() bool { return false }

func (j JaroWinkler) Distance(x, y string) float64 {
	s := j.Scale
	if s == 0 {
		s = 1
	}
	p := j.PrefixWeight
	if p == 0 {
		p = 0.1
	}
	rx, ry := []rune(x), []rune(y)
	sim := jaroSim(rx, ry)
	l := 0
	for l < len(rx) && l < len(ry) && rx[l] == ry[l] && l < 4 {
		l++
	}
	sim += float64(l) * p * (1 - sim)
	return s * (1 - sim)
}

func jaroSim(a, b []rune) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	window := len(a)
	if len(b) > window {
		window = len(b)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	aMatch := make([]bool, len(a))
	bMatch := make([]bool, len(b))
	matches := 0
	for i := range a {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(b) {
			hi = len(b)
		}
		for k := lo; k < hi; k++ {
			if !bMatch[k] && a[i] == b[k] {
				aMatch[i] = true
				bMatch[k] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	k := 0
	for i := range a {
		if !aMatch[i] {
			continue
		}
		for !bMatch[k] {
			k++
		}
		if a[i] != b[k] {
			transpositions++
		}
		k++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(a)) + m/float64(len(b)) + (m-t)/m) / 3
}

// ---- token measures ----

// Tokenize lower-cases s and splits it into maximal runs of letters and
// digits. Shared by the token-based measures and the xmldb term index.
func Tokenize(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Jaccard is 1 - |S∩T|/|S∪T| over token sets, scaled by Scale (0 means 1).
// It is strong: the Jaccard distance is a metric.
type Jaccard struct {
	Scale float64
}

func (Jaccard) Name() string { return "jaccard" }
func (Jaccard) Strong() bool { return true }

func (j Jaccard) Distance(x, y string) float64 {
	s := j.Scale
	if s == 0 {
		s = 1
	}
	sx := tokenSet(x)
	sy := tokenSet(y)
	if len(sx) == 0 && len(sy) == 0 {
		return 0
	}
	inter := 0
	for t := range sx {
		if sy[t] {
			inter++
		}
	}
	union := len(sx) + len(sy) - inter
	return s * (1 - float64(inter)/float64(union))
}

func tokenSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, t := range Tokenize(s) {
		set[t] = true
	}
	return set
}

// Cosine is 1 - cosine similarity of token term-frequency vectors, scaled by
// Scale (0 means 1). Not strong.
type Cosine struct {
	Scale float64
}

func (Cosine) Name() string { return "cosine" }
func (Cosine) Strong() bool { return false }

func (c Cosine) Distance(x, y string) float64 {
	s := c.Scale
	if s == 0 {
		s = 1
	}
	if x == y {
		return 0
	}
	fx := termFreq(x)
	fy := termFreq(y)
	if len(fx) == 0 && len(fy) == 0 {
		return 0
	}
	var dot, nx, ny float64
	for t, v := range fx {
		dot += v * fy[t]
		nx += v * v
	}
	for _, v := range fy {
		ny += v * v
	}
	if nx == 0 || ny == 0 {
		return s
	}
	d := s * (1 - dot/(math.Sqrt(nx)*math.Sqrt(ny)))
	if d < 0 {
		return 0 // guard against floating-point overshoot
	}
	return d
}

func termFreq(s string) map[string]float64 {
	f := map[string]float64{}
	for _, t := range Tokenize(s) {
		f[t]++
	}
	return f
}

// ---- Monge-Elkan ----

// MongeElkan is the hybrid measure: for each token of x take the best
// (smallest) inner distance to a token of y, average, and symmetrise by
// taking the max of the two directions (so the result is a symmetric
// distance). Inner defaults to Levenshtein. Not strong.
type MongeElkan struct {
	Inner Measure
}

func (MongeElkan) Name() string { return "monge-elkan" }
func (MongeElkan) Strong() bool { return false }

func (m MongeElkan) Distance(x, y string) float64 {
	inner := m.Inner
	if inner == nil {
		inner = Levenshtein{}
	}
	tx := Tokenize(x)
	ty := Tokenize(y)
	if len(tx) == 0 && len(ty) == 0 {
		return 0
	}
	d1 := mongeDir(inner, tx, ty)
	d2 := mongeDir(inner, ty, tx)
	if d2 > d1 {
		return d2
	}
	return d1
}

func mongeDir(inner Measure, from, to []string) float64 {
	if len(from) == 0 || len(to) == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for _, a := range from {
		best := math.Inf(1)
		for _, b := range to {
			if d := inner.Distance(a, b); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(from))
}

// ---- registry ----

// ByName returns a measure by its Name, or nil if unknown. Scaled variants
// use sensible defaults (Jaro/cosine scaled by 10 so thresholds line up with
// edit-distance-style epsilons).
func ByName(name string) Measure {
	switch name {
	case "levenshtein":
		return Levenshtein{}
	case "damerau":
		return Damerau{}
	case "jaro":
		return Jaro{Scale: 10}
	case "jaro-winkler":
		return JaroWinkler{Scale: 10}
	case "jaccard":
		return Jaccard{Scale: 10}
	case "cosine":
		return Cosine{Scale: 10}
	case "monge-elkan":
		return MongeElkan{}
	case "name-rule":
		return NameRule{Fallback: Levenshtein{}}
	case "soundex":
		return Soundex{}
	default:
		return nil
	}
}

// Names lists the registered measure names.
func Names() []string {
	return []string{"levenshtein", "damerau", "jaro", "jaro-winkler",
		"jaccard", "cosine", "monge-elkan", "name-rule", "soundex"}
}
