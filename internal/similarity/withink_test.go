package similarity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWithinKMatchesFullDP: the banded threshold computation must agree with
// the full DP for every (pair, k), for both measures.
func TestWithinKMatchesFullDP(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := []rune("abcde")
		gen := func() string {
			out := make([]rune, r.Intn(12))
			for i := range out {
				out[i] = alpha[r.Intn(len(alpha))]
			}
			return string(out)
		}
		a, b := gen(), gen()
		k := r.Intn(6) - 1 // includes k = -1
		lev := editDistance([]rune(a), []rune(b), false)
		dam := editDistance([]rune(a), []rune(b), true)
		if WithinK(a, b, k) != (k >= 0 && lev <= k) {
			t.Logf("WithinK(%q,%q,%d) disagrees with distance %d", a, b, k, lev)
			return false
		}
		if WithinKDamerau(a, b, k) != (k >= 0 && dam <= k) {
			t.Logf("WithinKDamerau(%q,%q,%d) disagrees with distance %d", a, b, k, dam)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestWithinUsesThreshold: Within on the edit measures must agree with the
// exact distance across fractional and negative epsilons.
func TestWithinUsesThreshold(t *testing.T) {
	cases := []struct{ x, y string }{
		{"kitten", "sitting"}, {"abc", "cba"}, {"", ""}, {"", "abc"},
		{"flaw", "lawn"}, {"gumbo", "gambol"},
	}
	for _, m := range []Measure{Levenshtein{}, Damerau{}} {
		for _, c := range cases {
			d := m.Distance(c.x, c.y)
			for _, eps := range []float64{-1, 0, 0.5, 1, 1.9, 2, 3, 10} {
				got := Within(m, c.x, c.y, eps)
				want := d <= eps
				if got != want {
					t.Errorf("%s Within(%q,%q,%v) = %v, want %v (d=%v)",
						m.Name(), c.x, c.y, eps, got, want, d)
				}
			}
		}
	}
}
