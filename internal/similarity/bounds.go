package similarity

// LowerBounder is an optional extension of Measure: a cheap lower bound on
// Distance(x, y) that lets callers skip the full computation when the bound
// already exceeds their threshold. The SEA algorithm uses it to prune the
// quadratic pairwise-distance pass.
type LowerBounder interface {
	LowerBound(x, y string) float64
}

// LowerBound for Levenshtein: the length difference (every length-changing
// edit is one operation).
func (Levenshtein) LowerBound(x, y string) float64 {
	return float64(absInt(len([]rune(x)) - len([]rune(y))))
}

// LowerBound for Damerau: same as Levenshtein (transpositions do not change
// length).
func (Damerau) LowerBound(x, y string) float64 {
	return float64(absInt(len([]rune(x)) - len([]rune(y))))
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Within reports whether d.Distance(x, y) ≤ eps, using the measure's lower
// bound (if it has one) to short-circuit.
func Within(d Measure, x, y string, eps float64) bool {
	if lb, ok := d.(LowerBounder); ok && lb.LowerBound(x, y) > eps {
		return false
	}
	return d.Distance(x, y) <= eps
}
