package similarity

// LowerBounder is an optional extension of Measure: a cheap lower bound on
// Distance(x, y) that lets callers skip the full computation when the bound
// already exceeds their threshold. The SEA algorithm uses it to prune the
// quadratic pairwise-distance pass.
type LowerBounder interface {
	LowerBound(x, y string) float64
}

// LowerBound for Levenshtein: the length difference (every length-changing
// edit is one operation).
func (Levenshtein) LowerBound(x, y string) float64 {
	return float64(absInt(len([]rune(x)) - len([]rune(y))))
}

// LowerBound for Damerau: same as Levenshtein (transpositions do not change
// length).
func (Damerau) LowerBound(x, y string) float64 {
	return float64(absInt(len([]rune(x)) - len([]rune(y))))
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Thresholder is an optional extension of Measure: decide Distance(x, y) ≤ eps
// without computing the full distance. The edit-distance measures implement it
// with the banded DP of WithinK, which visits O(k·min(n,m)) cells instead of
// the full O(n·m) matrix and exits early once a whole band row exceeds k.
type Thresholder interface {
	WithinEps(x, y string, eps float64) bool
}

// WithinEps for Levenshtein: distances are integers, so ≤ eps ⟺ ≤ ⌊eps⌋.
func (Levenshtein) WithinEps(x, y string, eps float64) bool {
	return WithinK(x, y, floorEps(eps))
}

// WithinEps for Damerau: same banded band, with the transposition cell.
func (Damerau) WithinEps(x, y string, eps float64) bool {
	return WithinKDamerau(x, y, floorEps(eps))
}

func floorEps(eps float64) int {
	if eps < 0 {
		return -1
	}
	return int(eps)
}

// Within reports whether d.Distance(x, y) ≤ eps, using the measure's lower
// bound (if it has one) to short-circuit and its thresholded form (if it has
// one) instead of the full distance.
func Within(d Measure, x, y string, eps float64) bool {
	if lb, ok := d.(LowerBounder); ok && lb.LowerBound(x, y) > eps {
		return false
	}
	if th, ok := d.(Thresholder); ok {
		return th.WithinEps(x, y, eps)
	}
	return d.Distance(x, y) <= eps
}
