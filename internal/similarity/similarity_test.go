package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		x, y string
		want float64
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"model", "models", 1},
		{"relation", "relational", 2},
		{"flaw", "lawn", 2},
		{"日本語", "日本", 1}, // rune-wise, not byte-wise
	}
	var m Levenshtein
	for _, c := range cases {
		if got := m.Distance(c.x, c.y); got != c.want {
			t.Errorf("levenshtein(%q, %q) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

func TestDamerauTransposition(t *testing.T) {
	var lev Levenshtein
	var dam Damerau
	if lev.Distance("Ullman", "Ulmlan") != 2 {
		t.Error("levenshtein should charge 2 for a transposition")
	}
	if dam.Distance("Ullman", "Ulmlan") != 1 {
		t.Error("damerau should charge 1 for a transposition")
	}
	if dam.Distance("abc", "cab") != 2 {
		t.Errorf("damerau(abc, cab) = %g, want 2", dam.Distance("abc", "cab"))
	}
}

func TestJaroKnownBehaviour(t *testing.T) {
	j := Jaro{}
	if d := j.Distance("martha", "martha"); d != 0 {
		t.Errorf("jaro identical = %g", d)
	}
	dm := j.Distance("martha", "marhta")
	if dm <= 0 || dm >= 0.1 {
		t.Errorf("jaro(martha, marhta) = %g, want small positive", dm)
	}
	if d := j.Distance("abc", "xyz"); d != 1 {
		t.Errorf("jaro disjoint = %g, want 1", d)
	}
	if d := j.Distance("", ""); d != 0 {
		t.Errorf("jaro empty = %g", d)
	}
	if d := j.Distance("a", ""); d != 1 {
		t.Errorf("jaro vs empty = %g", d)
	}
	// Winkler boosts shared prefixes.
	jw := JaroWinkler{}
	if jw.Distance("martha", "marhta") >= dm {
		t.Error("jaro-winkler should be closer than jaro for shared prefix")
	}
}

func TestJaccardAndCosine(t *testing.T) {
	jac := Jaccard{}
	if d := jac.Distance("a b c", "a b c"); d != 0 {
		t.Errorf("jaccard identical = %g", d)
	}
	if d := jac.Distance("a b", "c d"); d != 1 {
		t.Errorf("jaccard disjoint = %g", d)
	}
	if d := jac.Distance("a b", "b c"); math.Abs(d-2.0/3) > 1e-9 {
		t.Errorf("jaccard overlap = %g, want 2/3", d)
	}
	cos := Cosine{}
	if d := cos.Distance("x y", "x y"); math.Abs(d) > 1e-9 {
		t.Errorf("cosine identical = %g", d)
	}
	if d := cos.Distance("x", "y"); math.Abs(d-1) > 1e-9 {
		t.Errorf("cosine disjoint = %g", d)
	}
	// Punctuation-insensitive: the SIGMOD trailing-dot case.
	if d := jac.Distance("Securing XML Documents", "Securing XML Documents."); d != 0 {
		t.Errorf("jaccard should ignore punctuation, got %g", d)
	}
}

func TestMongeElkan(t *testing.T) {
	m := MongeElkan{}
	if d := m.Distance("Jeffrey Ullman", "Jeffrey Ullman"); d != 0 {
		t.Errorf("monge-elkan identical = %g", d)
	}
	near := m.Distance("Jeffrey D Ullman", "Jeffrey Ullman")
	far := m.Distance("Jeffrey Ullman", "Paolo Ciancarini")
	if near >= far {
		t.Errorf("monge-elkan ordering wrong: near=%g far=%g", near, far)
	}
	// Symmetric by construction (max of both directions).
	if m.Distance("a b", "a") != m.Distance("a", "a b") {
		t.Error("monge-elkan must be symmetric")
	}
}

func TestNameRuleCases(t *testing.T) {
	n := NameRule{}
	cases := []struct {
		x, y     string
		lo, hi   float64
		scenario string
	}{
		{"Jeffrey D. Ullman", "Jeffrey D. Ullman", 0, 0, "identical"},
		{"Gian Luigi Ferrari", "GianLuigi Ferrari", 1, 1, "concatenation"},
		{"Jeffrey D. Ullman", "J. D. Ullman", 1, 1, "first initial"},
		{"Jeffrey D. Ullman", "J. Ullman", 2, 2, "initial + dropped middle"},
		{"Jeffrey Ullman", "Jeff Ullman", 1, 1, "shortened given name"},
		{"Marco Ferrari", "Mauro Ferrari", 2, 2, "paper's 'quite similar' pair"},
		{"Marco Ferrari", "GianLuigi Ferrari", 4, 100, "paper's 'much less similar' pair"},
		{"Marco Ferrari", "Marco Bertino", 5, 100, "different surnames"},
		{"Jeffrey D. Ullman", "J. D. Ulmlan", 3, 3, "initials + surname transposition"},
	}
	for _, c := range cases {
		got := n.Distance(c.x, c.y)
		if got < c.lo || got > c.hi {
			t.Errorf("%s: d(%q, %q) = %g, want in [%g, %g]", c.scenario, c.x, c.y, got, c.lo, c.hi)
		}
		if back := n.Distance(c.y, c.x); back != got {
			t.Errorf("%s: asymmetric (%g vs %g)", c.scenario, got, back)
		}
	}
	// Paper's Section 2.2 ordering: ds(GianLuigi, Gian Luigi) < ds(Marco,
	// Mauro) < ds(Marco, GianLuigi).
	d1 := n.Distance("Gian Luigi Ferrari", "GianLuigi Ferrari")
	d2 := n.Distance("Marco Ferrari", "Mauro Ferrari")
	d3 := n.Distance("Marco Ferrari", "GianLuigi Ferrari")
	if !(d1 < d2 && d2 < d3) {
		t.Errorf("paper ordering violated: %g, %g, %g", d1, d2, d3)
	}
}

func TestNameRuleFallback(t *testing.T) {
	n := NameRule{}
	// Single tokens fall back to edit distance.
	if d := n.Distance("model", "models"); d != 1 {
		t.Errorf("single-token fallback = %g, want 1", d)
	}
	if d := n.Distance("", "x"); d != 1 {
		t.Errorf("empty vs x = %g", d)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Securing XML-Documents, 2nd ed.")
	want := []string{"securing", "xml", "documents", "2nd", "ed"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Error("Tokenize(empty) should be empty")
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, name := range Names() {
		m := ByName(name)
		if m == nil {
			t.Errorf("ByName(%q) = nil", name)
			continue
		}
		if m.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
	if ByName("nope") != nil {
		t.Error("unknown measure should be nil")
	}
}

func TestWithinUsesLowerBound(t *testing.T) {
	// Levenshtein's lower bound is the length difference.
	var lev Levenshtein
	if lev.LowerBound("ab", "abcdef") != 4 {
		t.Errorf("LowerBound = %g", lev.LowerBound("ab", "abcdef"))
	}
	if Within(lev, "ab", "abcdef", 3) {
		t.Error("Within should refuse when lower bound exceeds eps")
	}
	if !Within(lev, "model", "models", 1) {
		t.Error("Within should accept close strings")
	}
}

// randomString generates short strings over a small alphabet so that
// interesting collisions happen.
func randomString(rng *rand.Rand) string {
	n := rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = "ab .J"[rng.Intn(5)]
	}
	return string(b)
}

// TestQuickMeasureAxioms checks Definition 7 for every registered measure:
// d(x,x) = 0, symmetry, non-negativity.
func TestQuickMeasureAxioms(t *testing.T) {
	for _, name := range Names() {
		m := ByName(name)
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			x := randomString(rng)
			y := randomString(rng)
			if m.Distance(x, x) != 0 {
				t.Logf("%s: d(%q,%q) != 0", name, x, x)
				return false
			}
			dxy := m.Distance(x, y)
			if dxy < 0 || math.IsNaN(dxy) {
				t.Logf("%s: d(%q,%q) = %g negative/NaN", name, x, y, dxy)
				return false
			}
			if dyx := m.Distance(y, x); math.Abs(dxy-dyx) > 1e-9 {
				t.Logf("%s: asymmetric d(%q,%q)=%g d(%q,%q)=%g", name, x, y, dxy, y, x, dyx)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestQuickTriangleInequality checks the "strong" flag: every measure that
// claims Strong() must satisfy the triangle inequality.
func TestQuickTriangleInequality(t *testing.T) {
	for _, name := range Names() {
		m := ByName(name)
		if !m.Strong() {
			continue
		}
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			x, y, z := randomString(rng), randomString(rng), randomString(rng)
			if m.Distance(x, y)+m.Distance(y, z) < m.Distance(x, z)-1e-9 {
				t.Logf("%s: triangle violated for %q %q %q", name, x, y, z)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestQuickLowerBoundSound checks that LowerBound never exceeds Distance.
func TestQuickLowerBoundSound(t *testing.T) {
	for _, name := range Names() {
		m := ByName(name)
		lb, ok := m.(LowerBounder)
		if !ok {
			continue
		}
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			x, y := randomString(rng), randomString(rng)
			return lb.LowerBound(x, y) <= m.Distance(x, y)+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
