package similarity_test

import (
	"fmt"

	"repro/internal/similarity"
)

// The rule-based name measure reproduces the paper's Section 2.2 intuition:
// concatenation errors are very similar, same-surname near-miss first names
// are quite similar, and unrelated given names are far apart.
func ExampleNameRule() {
	m := similarity.NameRule{}
	fmt.Println(m.Distance("Gian Luigi Ferrari", "GianLuigi Ferrari"))
	fmt.Println(m.Distance("Marco Ferrari", "Mauro Ferrari"))
	fmt.Println(m.Distance("Jeffrey D. Ullman", "J. Ullman"))
	// Output:
	// 1
	// 2
	// 2
}

func ExampleLevenshtein() {
	var m similarity.Levenshtein
	fmt.Println(m.Distance("relation", "relational"))
	fmt.Println(m.Distance("model", "models"))
	fmt.Println(m.Strong())
	// Output:
	// 2
	// 1
	// true
}

func ExampleSoundexCode() {
	fmt.Println(similarity.SoundexCode("Meier"))
	fmt.Println(similarity.SoundexCode("Mayer"))
	// Output:
	// M600
	// M600
}

func ExampleByName() {
	m := similarity.ByName("jaccard")
	fmt.Println(m.Name(), m.Distance("Securing XML Documents", "Securing XML Documents."))
	// Output:
	// jaccard 0
}
