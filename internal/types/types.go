// Package types implements the typed-value machinery of Section 5 of the
// paper: a set T of types with domains, type hierarchies, and conversion
// functions τ1→τ2 with the closure conditions the paper imposes (identity
// conversions exist; conversions compose; a conversion exists along every
// hierarchy edge).
package types

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ontology"
)

// ConvFunc converts a value of one type into a value of another. Conversion
// functions are total on the source domain; a value outside the domain
// yields an error.
type ConvFunc func(value string) (string, error)

// Type describes one member of T.
type Type struct {
	Name string
	// Contains reports domain membership, dom(τ). Nil means "any string".
	Contains func(value string) bool
	// Compare orders two values of the domain: negative/zero/positive like
	// strings.Compare. Nil means lexicographic comparison.
	Compare func(a, b string) int
}

// System is a set of types, a type hierarchy (subtype ordering), and a
// registry of conversion functions closed under identity and composition.
type System struct {
	types map[string]*Type
	conv  map[[2]string]ConvFunc
	hier  *ontology.Hierarchy
}

// NewSystem returns a system pre-populated with the base types "string" and
// "int" (int ≤ string via decimal rendering, so heterogeneous comparisons
// have a least common supertype).
func NewSystem() *System {
	s := &System{
		types: map[string]*Type{},
		conv:  map[[2]string]ConvFunc{},
		hier:  ontology.NewHierarchy(),
	}
	s.MustRegister(&Type{Name: "string"})
	s.MustRegister(&Type{
		Name:     "int",
		Contains: isInt,
		Compare:  compareInt,
	})
	if err := s.DeclareSubtype("int", "string", func(v string) (string, error) { return v, nil }); err != nil {
		panic(err)
	}
	return s
}

func isInt(v string) bool {
	_, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	return err == nil
}

func compareInt(a, b string) int {
	x, errA := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
	y, errB := strconv.ParseInt(strings.TrimSpace(b), 10, 64)
	if errA != nil || errB != nil {
		return strings.Compare(a, b)
	}
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

// Register adds a type. Registering a duplicate name is an error.
func (s *System) Register(t *Type) error {
	if t.Name == "" {
		return fmt.Errorf("types: empty type name")
	}
	if _, dup := s.types[t.Name]; dup {
		return fmt.Errorf("types: duplicate type %q", t.Name)
	}
	s.types[t.Name] = t
	s.hier.AddNode(t.Name)
	// Identity conversion, as required by the closure conditions.
	s.conv[[2]string{t.Name, t.Name}] = func(v string) (string, error) { return v, nil }
	return nil
}

// MustRegister is Register but panics on error.
func (s *System) MustRegister(t *Type) {
	if err := s.Register(t); err != nil {
		panic(err)
	}
}

// Lookup returns a registered type, or nil.
func (s *System) Lookup(name string) *Type { return s.types[name] }

// Has reports whether the named type is registered.
func (s *System) Has(name string) bool { return s.types[name] != nil }

// Names lists the registered type names, sorted.
func (s *System) Names() []string {
	out := make([]string, 0, len(s.types))
	for n := range s.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Hierarchy exposes the subtype hierarchy (read-only use intended).
func (s *System) Hierarchy() *ontology.Hierarchy { return s.hier }

// DeclareSubtype records sub ≤ sup in the type hierarchy together with the
// mandatory conversion function sub→sup ("for all hierarchies H, if τ1 ≤_H
// τ2 then there exists a conversion function τ1 2 τ2"). The transitive
// compositions are added eagerly so that the closure conditions hold.
func (s *System) DeclareSubtype(sub, sup string, f ConvFunc) error {
	if s.types[sub] == nil || s.types[sup] == nil {
		return fmt.Errorf("types: subtype declaration %s <= %s references unregistered type", sub, sup)
	}
	if f == nil {
		return fmt.Errorf("types: subtype declaration %s <= %s requires a conversion function", sub, sup)
	}
	if err := s.hier.AddEdge(sub, sup); err != nil {
		return err
	}
	s.setConv(sub, sup, f)
	// Close under composition: everything below sub now converts to
	// everything at or above sup, and sub itself converts to everything
	// above sup.
	for _, lo := range s.hier.Below(sub) {
		loToSub := s.conv[[2]string{lo, sub}]
		if loToSub == nil {
			continue
		}
		for _, hi := range s.hier.Above(sup) {
			supToHi := s.conv[[2]string{sup, hi}]
			if supToHi == nil {
				continue
			}
			if _, have := s.conv[[2]string{lo, hi}]; have && !(lo == sub && hi == sup) {
				continue // keep the existing composition (assumed equivalent)
			}
			s.setConv(lo, hi, compose(loToSub, f, supToHi))
		}
	}
	return nil
}

func (s *System) setConv(from, to string, f ConvFunc) {
	s.conv[[2]string{from, to}] = f
}

func compose(fs ...ConvFunc) ConvFunc {
	return func(v string) (string, error) {
		var err error
		for _, f := range fs {
			v, err = f(v)
			if err != nil {
				return "", err
			}
		}
		return v, nil
	}
}

// Convert converts a value from one type to another, if a conversion
// function exists.
func (s *System) Convert(value, from, to string) (string, error) {
	f := s.conv[[2]string{from, to}]
	if f == nil {
		return "", fmt.Errorf("types: no conversion %s -> %s", from, to)
	}
	return f(value)
}

// CanConvert reports whether a conversion function from→to exists.
func (s *System) CanConvert(from, to string) bool {
	return s.conv[[2]string{from, to}] != nil
}

// Subtype reports sub ≤ sup in the type hierarchy (reflexive).
func (s *System) Subtype(sub, sup string) bool { return s.hier.Leq(sub, sup) }

// LeastCommonSupertype returns the least upper bound of a and b in the type
// hierarchy, if one exists (Section 5.1.1: needed to well-type comparisons).
func (s *System) LeastCommonSupertype(a, b string) (string, bool) {
	if !s.Has(a) || !s.Has(b) {
		return "", false
	}
	upA := s.hier.Above(a)
	common := make([]string, 0, len(upA))
	for _, t := range upA {
		if s.hier.Leq(b, t) {
			common = append(common, t)
		}
	}
	if len(common) == 0 {
		return "", false
	}
	// The least element of common: the one below all others.
	for _, cand := range common {
		least := true
		for _, other := range common {
			if !s.hier.Leq(cand, other) {
				least = false
				break
			}
		}
		if least {
			return cand, true
		}
	}
	return "", false
}

// CompareAs compares two raw values after converting both to the given
// common type, using that type's ordering.
func (s *System) CompareAs(a, aType, b, bType, common string) (int, error) {
	ca, err := s.Convert(a, aType, common)
	if err != nil {
		return 0, err
	}
	cb, err := s.Convert(b, bType, common)
	if err != nil {
		return 0, err
	}
	t := s.types[common]
	if t == nil {
		return 0, fmt.Errorf("types: unknown common type %q", common)
	}
	if t.Compare != nil {
		return t.Compare(ca, cb), nil
	}
	return strings.Compare(ca, cb), nil
}

// InDomain reports whether value ∈ dom(typ).
func (s *System) InDomain(value, typ string) bool {
	t := s.types[typ]
	if t == nil {
		return false
	}
	if t.Contains == nil {
		return true
	}
	return t.Contains(value)
}

// MustDeclareUnit registers a numeric unit type (a scaled int) and its
// conversions with a named base unit: 1 unit = factor base-units. Useful for
// the paper's mm/cm and currency examples and exercised by tests.
func (s *System) MustDeclareUnit(name, base string, factor float64) {
	s.MustRegister(&Type{Name: name, Contains: isNumeric, Compare: compareNumeric})
	if !s.Has(base) {
		s.MustRegister(&Type{Name: base, Contains: isNumeric, Compare: compareNumeric})
	}
	mul := func(f float64) ConvFunc {
		return func(v string) (string, error) {
			x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return "", fmt.Errorf("types: %q is not numeric: %v", v, err)
			}
			return strconv.FormatFloat(x*f, 'f', -1, 64), nil
		}
	}
	if err := s.DeclareSubtype(name, base, mul(factor)); err != nil {
		panic(err)
	}
	// The reverse conversion exists too (units are interconvertible) even
	// though the hierarchy records only name ≤ base.
	s.setConv(base, name, mul(1/factor))
}

func isNumeric(v string) bool {
	_, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	return err == nil
}

func compareNumeric(a, b string) int {
	x, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	y, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA != nil || errB != nil {
		return strings.Compare(a, b)
	}
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}
