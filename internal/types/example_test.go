package types_test

import (
	"fmt"

	"repro/internal/types"
)

// Conversion functions compose automatically along the subtype hierarchy,
// as the paper's closure conditions require.
func ExampleSystem_Convert() {
	s := types.NewSystem()
	s.MustDeclareUnit("cm", "mm", 10)
	mm, _ := s.Convert("2.5", "cm", "mm")
	back, _ := s.Convert("25", "mm", "cm")
	fmt.Println(mm, back)
	// Output:
	// 25 2.5
}

func ExampleSystem_LeastCommonSupertype() {
	s := types.NewSystem()
	lcs, ok := s.LeastCommonSupertype("int", "string")
	fmt.Println(lcs, ok)
	// Output:
	// string true
}
