package types

import (
	"testing"
)

func TestDefaults(t *testing.T) {
	s := NewSystem()
	if !s.Has("string") || !s.Has("int") {
		t.Fatal("base types missing")
	}
	if !s.Subtype("int", "string") {
		t.Error("int should be a subtype of string")
	}
	if s.Subtype("string", "int") {
		t.Error("string is not a subtype of int")
	}
	if !s.Subtype("int", "int") {
		t.Error("subtype is reflexive")
	}
	got, err := s.Convert("42", "int", "string")
	if err != nil || got != "42" {
		t.Errorf("int->string conversion: %q, %v", got, err)
	}
	// Identity conversions exist for every registered type.
	got, err = s.Convert("x", "string", "string")
	if err != nil || got != "x" {
		t.Errorf("identity conversion: %q, %v", got, err)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewSystem()
	if err := s.Register(&Type{Name: ""}); err == nil {
		t.Error("empty name must fail")
	}
	if err := s.Register(&Type{Name: "int"}); err == nil {
		t.Error("duplicate must fail")
	}
	if err := s.DeclareSubtype("nope", "string", func(v string) (string, error) { return v, nil }); err == nil {
		t.Error("unregistered subtype must fail")
	}
	s.MustRegister(&Type{Name: "year"})
	if err := s.DeclareSubtype("year", "string", nil); err == nil {
		t.Error("nil conversion function must fail")
	}
}

func TestDomains(t *testing.T) {
	s := NewSystem()
	if !s.InDomain("42", "int") || s.InDomain("forty-two", "int") {
		t.Error("int domain check wrong")
	}
	if !s.InDomain("anything", "string") {
		t.Error("string domain is universal")
	}
	if s.InDomain("x", "nope") {
		t.Error("unknown type has no domain")
	}
}

func TestLeastCommonSupertype(t *testing.T) {
	s := NewSystem()
	if lcs, ok := s.LeastCommonSupertype("int", "string"); !ok || lcs != "string" {
		t.Errorf("LCS(int,string) = %q, %v", lcs, ok)
	}
	if lcs, ok := s.LeastCommonSupertype("int", "int"); !ok || lcs != "int" {
		t.Errorf("LCS(int,int) = %q, %v", lcs, ok)
	}
	s.MustRegister(&Type{Name: "island"})
	if _, ok := s.LeastCommonSupertype("int", "island"); ok {
		t.Error("disconnected types have no LCS")
	}
	if _, ok := s.LeastCommonSupertype("int", "ghost"); ok {
		t.Error("unknown type has no LCS")
	}
}

func TestCompareAs(t *testing.T) {
	s := NewSystem()
	// Integers compare numerically, not lexicographically.
	cmp, err := s.CompareAs("9", "int", "10", "int", "int")
	if err != nil || cmp >= 0 {
		t.Errorf("9 < 10 as ints, got %d (%v)", cmp, err)
	}
	// As strings they compare lexicographically.
	cmp, err = s.CompareAs("9", "string", "10", "string", "string")
	if err != nil || cmp <= 0 {
		t.Errorf("\"9\" > \"10\" as strings, got %d (%v)", cmp, err)
	}
	if _, err := s.CompareAs("a", "string", "b", "string", "ghost"); err == nil {
		t.Error("unknown common type must fail")
	}
}

func TestUnits(t *testing.T) {
	s := NewSystem()
	s.MustDeclareUnit("cm", "mm", 10)
	got, err := s.Convert("2.5", "cm", "mm")
	if err != nil || got != "25" {
		t.Errorf("2.5cm = %q mm (%v)", got, err)
	}
	// Reverse conversion is registered even though the hierarchy only has
	// cm <= mm.
	got, err = s.Convert("25", "mm", "cm")
	if err != nil || got != "2.5" {
		t.Errorf("25mm = %q cm (%v)", got, err)
	}
	// Comparison through the common supertype (the paper's conversion
	// function machinery): 2.5 cm == 25 mm.
	lcs, ok := s.LeastCommonSupertype("cm", "mm")
	if !ok || lcs != "mm" {
		t.Fatalf("LCS(cm,mm) = %q, %v", lcs, ok)
	}
	cmp, err := s.CompareAs("2.5", "cm", "25", "mm", lcs)
	if err != nil || cmp != 0 {
		t.Errorf("2.5cm vs 25mm = %d (%v)", cmp, err)
	}
	if _, err := s.Convert("abc", "cm", "mm"); err == nil {
		t.Error("non-numeric unit value must fail conversion")
	}
}

func TestCompositionClosure(t *testing.T) {
	// a <= b <= c must compose an a -> c conversion automatically.
	s := NewSystem()
	s.MustRegister(&Type{Name: "a"})
	s.MustRegister(&Type{Name: "b"})
	s.MustRegister(&Type{Name: "c"})
	suffix := func(sfx string) ConvFunc {
		return func(v string) (string, error) { return v + sfx, nil }
	}
	if err := s.DeclareSubtype("a", "b", suffix("-b")); err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareSubtype("b", "c", suffix("-c")); err != nil {
		t.Fatal(err)
	}
	if !s.CanConvert("a", "c") {
		t.Fatal("composition a->c missing")
	}
	got, err := s.Convert("x", "a", "c")
	if err != nil || got != "x-b-c" {
		t.Errorf("composed conversion = %q (%v)", got, err)
	}
	// Declaring the edges in the other order also composes.
	s2 := NewSystem()
	s2.MustRegister(&Type{Name: "a"})
	s2.MustRegister(&Type{Name: "b"})
	s2.MustRegister(&Type{Name: "c"})
	if err := s2.DeclareSubtype("b", "c", suffix("-c")); err != nil {
		t.Fatal(err)
	}
	if err := s2.DeclareSubtype("a", "b", suffix("-b")); err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Convert("x", "a", "c"); err != nil || got != "x-b-c" {
		t.Errorf("reverse-order composition = %q (%v)", got, err)
	}
}

func TestSubtypeCycleRejected(t *testing.T) {
	s := NewSystem()
	s.MustRegister(&Type{Name: "a"})
	s.MustRegister(&Type{Name: "b"})
	id := func(v string) (string, error) { return v, nil }
	if err := s.DeclareSubtype("a", "b", id); err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareSubtype("b", "a", id); err == nil {
		t.Error("subtype cycle must be rejected")
	}
}

func TestNames(t *testing.T) {
	s := NewSystem()
	names := s.Names()
	if len(names) != 2 || names[0] != "int" || names[1] != "string" {
		t.Errorf("Names = %v", names)
	}
	if s.Lookup("int") == nil || s.Lookup("nope") != nil {
		t.Error("Lookup broken")
	}
}

func TestNumericDomainAndCompare(t *testing.T) {
	s := NewSystem()
	s.MustDeclareUnit("kg", "g", 1000)
	if !s.InDomain("2.5", "kg") || s.InDomain("heavy", "kg") {
		t.Error("numeric domain check broken")
	}
	cmp, err := s.CompareAs("1.5", "kg", "1600", "g", "g")
	if err != nil || cmp >= 0 {
		t.Errorf("1.5kg < 1600g expected, got %d (%v)", cmp, err)
	}
	// Non-numeric values degrade to string comparison inside numeric types.
	cmp, err = s.CompareAs("a", "g", "b", "g", "g")
	if err != nil || cmp >= 0 {
		t.Errorf("string fallback compare = %d (%v)", cmp, err)
	}
	// Same for int comparison fallback.
	cmp, err = s.CompareAs("x", "int", "y", "int", "int")
	if err != nil || cmp >= 0 {
		t.Errorf("int fallback compare = %d (%v)", cmp, err)
	}
	if s.Hierarchy() == nil || !s.Hierarchy().Leq("kg", "g") {
		t.Error("type hierarchy accessor broken")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	s := NewSystem()
	defer func() {
		if recover() == nil {
			t.Error("MustRegister should panic on duplicates")
		}
	}()
	s.MustRegister(&Type{Name: "int"})
}
