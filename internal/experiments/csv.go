package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV emits the Figure 15 per-query data (one row per query with TAX
// and per-ε TOSS precision/recall/quality) for plotting.
func (r *QualityReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	eps := r.epsList()
	header := []string{"query", "dataset", "label", "truth", "tax_precision", "tax_recall", "tax_quality"}
	for _, e := range eps {
		header = append(header,
			fmt.Sprintf("toss%g_precision", e),
			fmt.Sprintf("toss%g_recall", e),
			fmt.Sprintf("toss%g_quality", e))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, o := range r.Outcomes {
		row := []string{
			fmt.Sprint(i + 1),
			fmt.Sprint(o.Dataset),
			o.Label,
			fmt.Sprint(o.TruthSize),
			fmt.Sprintf("%.4f", o.TAX.Precision()),
			fmt.Sprintf("%.4f", o.TAX.Recall()),
			fmt.Sprintf("%.4f", o.TAX.Quality()),
		}
		for _, e := range eps {
			res := o.TOSS[e]
			row = append(row,
				fmt.Sprintf("%.4f", res.Precision()),
				fmt.Sprintf("%.4f", res.Recall()),
				fmt.Sprintf("%.4f", res.Quality()))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 16(a) series: bytes on the x axis, latency and
// pre-filter selectivity columns per curve.
func (r *SelectionScalabilityReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"papers", "bytes", "tax_ms"}
	for i := range r.TOSS {
		terms := curveTerms(r.TOSS[i])
		header = append(header,
			fmt.Sprintf("toss_%dterms_ms", terms),
			fmt.Sprintf("toss_%dterms_selectivity", terms))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for row := range r.TAX {
		rec := []string{
			fmt.Sprint(r.TAX[row].Papers),
			fmt.Sprint(r.TAX[row].Bytes),
			fmt.Sprintf("%.3f", msOf(r.TAX[row])),
		}
		for i := range r.TOSS {
			rec = append(rec,
				fmt.Sprintf("%.3f", msOf(r.TOSS[i][row])),
				fmt.Sprintf("%.4f", r.TOSS[i][row].Selectivity))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 16(b) series: latency and pair-selectivity
// columns per curve (pairs tried over the full cross product).
func (r *JoinScalabilityReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"papers", "bytes", "tax_ms"}
	for i := range r.TOSS {
		terms := curveTerms(r.TOSS[i])
		header = append(header,
			fmt.Sprintf("toss_%dterms_ms", terms),
			fmt.Sprintf("toss_%dterms_pair_selectivity", terms))
	}
	header = append(header, "results")
	if err := cw.Write(header); err != nil {
		return err
	}
	for row := range r.TAX {
		rec := []string{
			fmt.Sprint(r.TAX[row].Papers),
			fmt.Sprint(r.TAX[row].Bytes),
			fmt.Sprintf("%.3f", msOf(r.TAX[row])),
		}
		for i := range r.TOSS {
			rec = append(rec,
				fmt.Sprintf("%.3f", msOf(r.TOSS[i][row])),
				fmt.Sprintf("%.4f", r.TOSS[i][row].Selectivity))
		}
		rec = append(rec, fmt.Sprint(r.Results[row]))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 16(c) series.
func (r *EpsilonReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"eps", "selection_ms", "join_ms", "onto_terms", "seo_nodes"}); err != nil {
		return err
	}
	pts := append([]EpsilonPoint{}, r.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Eps < pts[j].Eps })
	for _, p := range pts {
		rec := []string{
			fmt.Sprintf("%g", p.Eps),
			fmt.Sprintf("%.3f", float64(p.SelectTime.Microseconds())/1000),
			fmt.Sprintf("%.3f", float64(p.JoinTime.Microseconds())/1000),
			fmt.Sprint(p.OntoTerms),
			fmt.Sprint(p.SEONodes),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func msOf(p ScalabilityPoint) float64 {
	return float64(p.Elapsed.Microseconds()) / 1000
}

// curveTerms labels a TOSS curve with its fused-ontology size (the last
// point's, where the ontology is largest).
func curveTerms(curve []ScalabilityPoint) int {
	if len(curve) == 0 {
		return 0
	}
	return curve[len(curve)-1].OntoTerms
}
