package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/pattern"
)

// EpsilonConfig parameterises the Figure 16(c) experiment: how the execution
// time of selection and join queries grows with the similarity threshold ε
// (the SEO is precomputed per ε, as in the paper; the reported time is query
// time only).
type EpsilonConfig struct {
	Epsilons     []float64
	SelectPapers int
	JoinPapers   int
	SIGMODShare  float64
	Repetitions  int
	Seed         int64
}

// DefaultEpsilonConfig sweeps ε = 0..6 as in the paper's x-axis.
func DefaultEpsilonConfig() EpsilonConfig {
	return EpsilonConfig{
		Epsilons:     []float64{0, 1, 2, 3, 4, 5, 6},
		SelectPapers: 1000,
		JoinPapers:   400,
		SIGMODShare:  0.2,
		Repetitions:  3,
		Seed:         17,
	}
}

// EpsilonPoint is one measured ε point.
type EpsilonPoint struct {
	Eps        float64
	SelectTime time.Duration
	JoinTime   time.Duration
	OntoTerms  int
	SEONodes   int
}

// EpsilonReport holds the Figure 16(c) series.
type EpsilonReport struct {
	Config EpsilonConfig
	Points []EpsilonPoint
}

// epsilonSelectQuery has one similarTo condition whose result set grows with
// ε (the driver of the paper's linear trend).
func epsilonSelectQuery(author string) *pattern.Tree {
	return pattern.MustParse(fmt.Sprintf(
		`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & `+
			`#2.content ~ %q`, author))
}

// RunEpsilon executes the Figure 16(c) experiment.
func RunEpsilon(cfg EpsilonConfig) (*EpsilonReport, error) {
	rep := &EpsilonReport{Config: cfg}
	reps := cfg.Repetitions
	if reps < 1 {
		reps = 1
	}

	selGen := datagen.DefaultConfig(cfg.SelectPapers)
	selGen.Seed = cfg.Seed
	selGen.AuthorPool = 60
	selGen.SurnamePool = 10
	selGen.MangleRate = 0.2
	selCorpus := datagen.Generate(selGen)
	selAuthor := selCorpus.Authors[0].Canonical()

	joinGen := datagen.DefaultConfig(cfg.JoinPapers)
	joinGen.Seed = cfg.Seed + 1
	joinCorpus := datagen.Generate(joinGen)
	nSig := int(float64(cfg.JoinPapers) * cfg.SIGMODShare)
	if nSig < 1 {
		nSig = 1
	}

	jq := joinQuery()
	sq := epsilonSelectQuery(selAuthor)
	for _, eps := range cfg.Epsilons {
		sysSel, err := buildSystem(selCorpus, buildOptions{chunk: 50, epsilon: eps, noLimit: true})
		if err != nil {
			return nil, fmt.Errorf("eps %g: %w", eps, err)
		}
		var selTotal time.Duration
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := sysSel.Query(context.Background(), core.QueryRequest{Pattern: sq, Instance: "dblp", Adorn: []int{1}}); err != nil {
				return nil, err
			}
			selTotal += time.Since(start)
		}

		sysJoin, err := buildSystem(joinCorpus, buildOptions{
			chunk: 50, withSIGMOD: true, sigmodPapers: joinCorpus.Papers[:nSig],
			epsilon: eps, noLimit: true,
		})
		if err != nil {
			return nil, fmt.Errorf("eps %g join: %w", eps, err)
		}
		var joinTotal time.Duration
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := sysJoin.Query(context.Background(), core.QueryRequest{Pattern: jq, Instance: "dblp", Right: "sigmod"}); err != nil {
				return nil, err
			}
			joinTotal += time.Since(start)
		}

		rep.Points = append(rep.Points, EpsilonPoint{
			Eps:        eps,
			SelectTime: selTotal / time.Duration(reps),
			JoinTime:   joinTotal / time.Duration(reps),
			OntoTerms:  sysSel.OntologyTermCount(),
			SEONodes:   sysSel.Ontology().SEO.NodeCount(),
		})
	}
	return rep, nil
}

// String renders the Figure 16(c) series as a table.
func (r *EpsilonReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 16(c): TOSS query time vs epsilon\n")
	fmt.Fprintf(&b, "%6s %12s %12s %10s %10s\n", "eps", "selection", "join", "ontoTerms", "seoNodes")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6.1f %12s %12s %10d %10d\n",
			p.Eps, fmtDur(p.SelectTime), fmtDur(p.JoinTime), p.OntoTerms, p.SEONodes)
	}
	return b.String()
}
