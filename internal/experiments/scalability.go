package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/tax"
	"repro/internal/tree"
)

// SelectionScalabilityConfig parameterises the Figure 16(a) experiment:
// conjunctive selection queries (2 isa + 4 tag matching conditions) over
// DBLP data of growing size, with TOSS curves at several ontology sizes and
// the TAX baseline.
type SelectionScalabilityConfig struct {
	// PaperCounts are the corpus sizes to sweep (each rendered to XML; the
	// report lists the resulting byte sizes, the x-axis the paper uses).
	PaperCounts []int
	// OntologySizes are MaxValueTerms caps yielding the TOSS curves of
	// different ontology sizes (0 = uncapped, the largest ontology).
	OntologySizes []int
	Epsilon       float64
	Repetitions   int
	Seed          int64
}

// DefaultSelectionScalabilityConfig sweeps ~0.1–1.4 MB of XML (scaled from
// the paper's 0.5–4.75 MB to keep the harness quick) at three ontology
// sizes.
func DefaultSelectionScalabilityConfig() SelectionScalabilityConfig {
	return SelectionScalabilityConfig{
		PaperCounts:   []int{250, 500, 1000, 2000, 3700},
		OntologySizes: []int{100, 250, 0},
		Epsilon:       3,
		Repetitions:   3,
		Seed:          11,
	}
}

// ScalabilityPoint is one measured point of a time-vs-size curve, with the
// pre-filter statistics of the run alongside the latency: for selections,
// Candidates/Total are the documents surviving the XPath pre-filter out of
// the collection; for joins they are the document pairs tried out of the
// full cross product. Selectivity is their ratio (1 for the TAX baseline,
// which has no pre-filter).
type ScalabilityPoint struct {
	Papers      int
	Bytes       int
	OntoTerms   int           // fused ontology size (0 for the TAX baseline)
	Elapsed     time.Duration // average over repetitions
	Candidates  int
	Total       int
	Selectivity float64
}

// SelectionScalabilityReport holds the Figure 16(a) series.
type SelectionScalabilityReport struct {
	Config SelectionScalabilityConfig
	// TOSS[i] is the curve for OntologySizes[i]; TAX is the baseline curve.
	TOSS [][]ScalabilityPoint
	TAX  []ScalabilityPoint
}

// selectionQuery is the paper's Fig 16(a) query shape: 4 tag matching and 2
// isa conditions.
func selectionQuery() *pattern.Tree {
	return pattern.MustParse(
		`#1 pc #2, #1 pc #3, #1 pc #4 :: ` +
			`#1.tag = "inproceedings" & #2.tag = "title" & #3.tag = "booktitle" & #4.tag = "year" & ` +
			`#2.content isa "operation" & #3.content isa "conference"`)
}

// RunSelectionScalability executes the Figure 16(a) experiment.
func RunSelectionScalability(cfg SelectionScalabilityConfig) (*SelectionScalabilityReport, error) {
	rep := &SelectionScalabilityReport{Config: cfg, TOSS: make([][]ScalabilityPoint, len(cfg.OntologySizes))}
	reps := cfg.Repetitions
	if reps < 1 {
		reps = 1
	}
	pat := selectionQuery()
	for _, papers := range cfg.PaperCounts {
		gen := datagen.DefaultConfig(papers)
		gen.Seed = cfg.Seed
		corpus := datagen.Generate(gen)

		for i, capTerms := range cfg.OntologySizes {
			s, err := buildSystem(corpus, buildOptions{
				chunk: 50, maxValueTerms: capTerms, epsilon: cfg.Epsilon, noLimit: true,
			})
			if err != nil {
				return nil, fmt.Errorf("papers=%d cap=%d: %w", papers, capTerms, err)
			}
			bytes := s.Instance("dblp").Col.ByteSize()
			var total time.Duration
			var stats *core.ExecStats
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, err := s.Query(context.Background(), core.QueryRequest{
					Pattern: pat, Instance: "dblp", Adorn: []int{1}, Trace: true,
				})
				if err != nil {
					return nil, err
				}
				total += time.Since(start)
				stats = res.Stats
			}
			rep.TOSS[i] = append(rep.TOSS[i], ScalabilityPoint{
				Papers:      papers,
				Bytes:       bytes,
				OntoTerms:   s.OntologyTermCount(),
				Elapsed:     total / time.Duration(reps),
				Candidates:  stats.CandidateDocs,
				Total:       stats.TotalDocs,
				Selectivity: stats.Selectivity(),
			})
		}

		// TAX baseline over the same documents, no ontology.
		s, err := buildSystem(corpus, buildOptions{
			chunk: 50, maxValueTerms: 1, epsilon: cfg.Epsilon, noLimit: true,
		})
		if err != nil {
			return nil, err
		}
		docs, err := s.Trees("dblp")
		if err != nil {
			return nil, err
		}
		var total time.Duration
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := tax.Select(tree.NewCollection(), docs, pat, []int{1}, tax.Baseline{}); err != nil {
				return nil, err
			}
			total += time.Since(start)
		}
		rep.TAX = append(rep.TAX, ScalabilityPoint{
			Papers:      papers,
			Bytes:       s.Instance("dblp").Col.ByteSize(),
			Elapsed:     total / time.Duration(reps),
			Candidates:  len(docs),
			Total:       len(docs),
			Selectivity: 1,
		})
	}
	return rep, nil
}

// String renders the Figure 16(a) series as a table.
func (r *SelectionScalabilityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 16(a): selection time vs data size (eps=%g)\n", r.Config.Epsilon)
	fmt.Fprintf(&b, "%8s %10s %12s", "papers", "bytes", "TAX")
	for i := range r.TOSS {
		terms := 0
		if len(r.TOSS[i]) > 0 {
			terms = r.TOSS[i][len(r.TOSS[i])-1].OntoTerms
		}
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("TOSS(%d)", terms))
	}
	b.WriteString("\n")
	for row := range r.TAX {
		fmt.Fprintf(&b, "%8d %10d %12s", r.TAX[row].Papers, r.TAX[row].Bytes, fmtDur(r.TAX[row].Elapsed))
		for i := range r.TOSS {
			fmt.Fprintf(&b, " %12s", fmtDur(r.TOSS[i][row].Elapsed))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	if d < time.Millisecond {
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// JoinScalabilityConfig parameterises the Figure 16(b) experiment: joins of
// DBLP and SIGMOD data (5 tag matching + 1 similarTo conditions) as the
// total data size grows.
type JoinScalabilityConfig struct {
	// PaperCounts sweep the DBLP side; the SIGMOD side holds a fixed
	// fraction of the papers (the paper's SIGMOD data was ~16% of the
	// largest DBLP file).
	PaperCounts  []int
	SIGMODShare  float64
	Epsilon      float64
	Repetitions  int
	Seed         int64
	OntologyCaps []int // value-term caps (TOSS curves), 0 = uncapped
}

// DefaultJoinScalabilityConfig sweeps joins at a scale that finishes in
// seconds while preserving the paper's superlinear tail.
func DefaultJoinScalabilityConfig() JoinScalabilityConfig {
	return JoinScalabilityConfig{
		PaperCounts:  []int{100, 200, 400, 800, 1600},
		SIGMODShare:  0.2,
		Epsilon:      3,
		Repetitions:  1,
		Seed:         13,
		OntologyCaps: []int{100, 0},
	}
}

// JoinScalabilityReport holds the Figure 16(b) series.
type JoinScalabilityReport struct {
	Config JoinScalabilityConfig
	TOSS   [][]ScalabilityPoint
	TAX    []ScalabilityPoint
	// Results sanity-checks the join outputs (result tree count at each
	// size, largest ontology curve).
	Results []int
}

// joinQuery is the paper's Fig 16(b)/Example 13 query shape: join DBLP and
// SIGMOD pages on similar titles — 5 tag matching conditions + 1 similarTo.
func joinQuery() *pattern.Tree {
	return pattern.MustParse(
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
			`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
			`#4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`)
}

// RunJoinScalability executes the Figure 16(b) experiment.
func RunJoinScalability(cfg JoinScalabilityConfig) (*JoinScalabilityReport, error) {
	rep := &JoinScalabilityReport{Config: cfg, TOSS: make([][]ScalabilityPoint, len(cfg.OntologyCaps))}
	reps := cfg.Repetitions
	if reps < 1 {
		reps = 1
	}
	pat := joinQuery()
	for _, papers := range cfg.PaperCounts {
		gen := datagen.DefaultConfig(papers)
		gen.Seed = cfg.Seed
		corpus := datagen.Generate(gen)
		nSig := int(float64(papers) * cfg.SIGMODShare)
		if nSig < 1 {
			nSig = 1
		}
		sigPapers := corpus.Papers[:nSig]

		for i, capTerms := range cfg.OntologyCaps {
			s, err := buildSystem(corpus, buildOptions{
				chunk: 50, withSIGMOD: true, sigmodPapers: sigPapers,
				maxValueTerms: capTerms, epsilon: cfg.Epsilon, noLimit: true,
			})
			if err != nil {
				return nil, fmt.Errorf("papers=%d cap=%d: %w", papers, capTerms, err)
			}
			bytes := s.Instance("dblp").Col.ByteSize() + s.Instance("sigmod").Col.ByteSize()
			var total time.Duration
			var count int
			var stats *core.ExecStats
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, err := s.Query(context.Background(), core.QueryRequest{
					Pattern: pat, Instance: "dblp", Right: "sigmod", Trace: true,
				})
				if err != nil {
					return nil, err
				}
				total += time.Since(start)
				count = len(res.Answers)
				stats = res.Stats
			}
			pt := ScalabilityPoint{
				Papers:      papers,
				Bytes:       bytes,
				OntoTerms:   s.OntologyTermCount(),
				Elapsed:     total / time.Duration(reps),
				Selectivity: 1,
			}
			if stats.Join != nil {
				pt.Candidates = stats.Join.PairsTried
				pt.Total = stats.Join.CrossPairs
				pt.Selectivity = stats.Join.PairSelectivity()
			}
			rep.TOSS[i] = append(rep.TOSS[i], pt)
			if i == len(cfg.OntologyCaps)-1 {
				rep.Results = append(rep.Results, count)
			}
		}

		// TAX baseline: the same join with exact-match semantics.
		s, err := buildSystem(corpus, buildOptions{
			chunk: 50, withSIGMOD: true, sigmodPapers: sigPapers,
			maxValueTerms: 1, epsilon: cfg.Epsilon, noLimit: true,
		})
		if err != nil {
			return nil, err
		}
		ldocs, err := s.Trees("dblp")
		if err != nil {
			return nil, err
		}
		rdocs, err := s.Trees("sigmod")
		if err != nil {
			return nil, err
		}
		var total time.Duration
		for r := 0; r < reps; r++ {
			dst := tree.NewCollection()
			start := time.Now()
			prod := tax.Product(dst, ldocs, rdocs)
			if _, err := tax.Select(dst, prod, pat, nil, tax.Baseline{}); err != nil {
				return nil, err
			}
			total += time.Since(start)
		}
		rep.TAX = append(rep.TAX, ScalabilityPoint{
			Papers:      papers,
			Bytes:       s.Instance("dblp").Col.ByteSize() + s.Instance("sigmod").Col.ByteSize(),
			Elapsed:     total / time.Duration(reps),
			Candidates:  len(ldocs) * len(rdocs),
			Total:       len(ldocs) * len(rdocs),
			Selectivity: 1,
		})
	}
	return rep, nil
}

// String renders the Figure 16(b) series as a table.
func (r *JoinScalabilityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 16(b): join time vs total data size (eps=%g)\n", r.Config.Epsilon)
	fmt.Fprintf(&b, "%8s %10s %12s", "papers", "bytes", "TAX")
	for i := range r.TOSS {
		terms := 0
		if len(r.TOSS[i]) > 0 {
			terms = r.TOSS[i][len(r.TOSS[i])-1].OntoTerms
		}
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("TOSS(%d)", terms))
	}
	fmt.Fprintf(&b, " %8s\n", "results")
	for row := range r.TAX {
		fmt.Fprintf(&b, "%8d %10d %12s", r.TAX[row].Papers, r.TAX[row].Bytes, fmtDur(r.TAX[row].Elapsed))
		for i := range r.TOSS {
			fmt.Fprintf(&b, " %12s", fmtDur(r.TOSS[i][row].Elapsed))
		}
		fmt.Fprintf(&b, " %8d\n", r.Results[row])
	}
	return b.String()
}
