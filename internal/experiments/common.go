// Package experiments contains the harnesses that regenerate every figure of
// the paper's evaluation (Section 6): the answer-quality comparison of
// Figure 15(a–c) and the performance curves of Figure 16(a–c), plus the
// ablation studies listed in DESIGN.md. Each harness returns a typed report
// whose String method prints the same rows/series the paper plots.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/similarity"
	"repro/internal/tree"
)

// DefaultMeasure is the similarity measure every experiment uses: the
// rule-based person-name measure (the paper's "rule-based similarity where a
// set of domain-specific rules are used"), which degrades to edit distance
// on non-name strings.
func DefaultMeasure() similarity.Measure {
	return similarity.NameRule{Fallback: similarity.Damerau{}}
}

// buildSystem loads DBLP (split into chunked documents) and optionally the
// SIGMOD corpus into a fresh TOSS system and builds the SEO.
type buildOptions struct {
	chunk         int // papers per XML document (0 = all in one document)
	withSIGMOD    bool
	sigmodPapers  []*datagen.Paper
	maxValueTerms int
	epsilon       float64
	noLimit       bool // lift the 5 MB Xindice-style cap for size sweeps
}

func buildSystem(corpus *datagen.Corpus, opts buildOptions) (*core.System, error) {
	s := core.NewSystem()
	if opts.maxValueTerms > 0 {
		s.MakerConfig.MaxValueTerms = opts.maxValueTerms
	}
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		return nil, err
	}
	if opts.noLimit {
		dblp.Col.SetMaxBytes(0)
	}
	chunk := opts.chunk
	if chunk <= 0 {
		chunk = len(corpus.Papers)
	}
	for i := 0; i < len(corpus.Papers); i += chunk {
		end := i + chunk
		if end > len(corpus.Papers) {
			end = len(corpus.Papers)
		}
		key := fmt.Sprintf("dblp-%04d", i/chunk)
		xml := corpus.DBLPString(corpus.Papers[i:end])
		if _, err := dblp.Col.PutXML(key, strings.NewReader(xml)); err != nil {
			return nil, fmt.Errorf("loading %s: %w", key, err)
		}
	}
	if opts.withSIGMOD {
		sig, err := s.AddInstance("sigmod")
		if err != nil {
			return nil, err
		}
		if opts.noLimit {
			sig.Col.SetMaxBytes(0)
		}
		papers := opts.sigmodPapers
		if papers == nil {
			papers = corpus.Papers
		}
		for i := 0; i < len(papers); i += chunk {
			end := i + chunk
			if end > len(papers) {
				end = len(papers)
			}
			key := fmt.Sprintf("sigmod-%04d", i/chunk)
			xml := corpus.SIGMODString(papers[i:end])
			if _, err := sig.Col.PutXML(key, strings.NewReader(xml)); err != nil {
				return nil, fmt.Errorf("loading %s: %w", key, err)
			}
		}
	}
	if err := s.Build(DefaultMeasure(), opts.epsilon); err != nil {
		return nil, err
	}
	return s, nil
}

// PaperIDs extracts the ground-truth paper IDs (the @key attributes the
// generators embed) from a set of answer trees, deduplicated in order.
func PaperIDs(trees []*tree.Tree) []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range trees {
		t.Walk(func(n *tree.Node) bool {
			if n.Tag == "@key" && n.Content != "" && !seen[n.Content] {
				seen[n.Content] = true
				out = append(out, n.Content)
			}
			return true
		})
	}
	return out
}
