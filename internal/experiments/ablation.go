package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ontology"
	"repro/internal/pattern"
	"repro/internal/seo"
	"repro/internal/similarity"
)

// AblationConfig parameterises the ablation studies DESIGN.md §5 lists.
type AblationConfig struct {
	Papers      int
	Epsilon     float64
	Repetitions int
	Seed        int64
}

// DefaultAblationConfig keeps the runs in the low seconds.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{Papers: 400, Epsilon: 3, Repetitions: 5, Seed: 3}
}

// AblationRow is one variant's average timing.
type AblationRow struct {
	Study   string
	Variant string
	Elapsed time.Duration
}

// AblationReport collects every ablation row.
type AblationReport struct {
	Config AblationConfig
	Rows   []AblationRow
}

// RunAblations executes the four design-choice ablations: precomputed SEO vs
// on-the-fly similarity, indexed vs scan XPath evaluation, the Lemma 1 node
// distance shortcut, and the reachability index for isa lookups.
func RunAblations(cfg AblationConfig) (*AblationReport, error) {
	rep := &AblationReport{Config: cfg}
	reps := cfg.Repetitions
	if reps < 1 {
		reps = 1
	}
	gen := datagen.DefaultConfig(cfg.Papers)
	gen.Seed = cfg.Seed
	corpus := datagen.Generate(gen)
	author := corpus.Authors[0].Canonical()
	simPat := pattern.MustParse(fmt.Sprintf(
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, author))

	timeIt := func(study, variant string, f func() error) error {
		var total time.Duration
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := f(); err != nil {
				return fmt.Errorf("%s/%s: %w", study, variant, err)
			}
			total += time.Since(start)
		}
		rep.Rows = append(rep.Rows, AblationRow{study, variant, total / time.Duration(reps)})
		return nil
	}

	// 1. Precomputed SEO vs on-the-fly similarity for ~ selections.
	withSEO, err := buildSystem(corpus, buildOptions{chunk: 50, epsilon: cfg.Epsilon, noLimit: true})
	if err != nil {
		return nil, err
	}
	dynamic := core.NewSystem()
	dynamic.MakerConfig.ValueTags = nil // every ~ becomes a live distance computation
	dyn, err := dynamic.AddInstance("dblp")
	if err != nil {
		return nil, err
	}
	dyn.Col.SetMaxBytes(0)
	if _, err := dyn.Col.PutXML("d", strings.NewReader(corpus.DBLPString(corpus.Papers))); err != nil {
		return nil, err
	}
	if err := dynamic.Build(DefaultMeasure(), cfg.Epsilon); err != nil {
		return nil, err
	}
	if err := timeIt("seo-precompute", "precomputed", func() error {
		_, err := withSEO.Query(context.Background(), core.QueryRequest{Pattern: simPat, Instance: "dblp", Adorn: []int{1}})
		return err
	}); err != nil {
		return nil, err
	}
	if err := timeIt("seo-precompute", "on-the-fly", func() error {
		_, err := dynamic.Query(context.Background(), core.QueryRequest{Pattern: simPat, Instance: "dblp", Adorn: []int{1}})
		return err
	}); err != nil {
		return nil, err
	}

	// 2. Indexed vs scan XPath evaluation.
	col := withSEO.Instance("dblp").Col
	col.BuildIndexes()
	const expr = `//inproceedings/booktitle[.='VLDB']`
	if err := timeIt("xpath-index", "indexed", func() error {
		_, err := col.Query(expr)
		return err
	}); err != nil {
		return nil, err
	}
	if err := timeIt("xpath-index", "scan", func() error {
		_, err := col.QueryScan(expr)
		return err
	}); err != nil {
		return nil, err
	}

	// 3. Lemma 1 shortcut in SEA clustering.
	names := ontology.NewHierarchy()
	for _, p := range corpus.Papers {
		for _, a := range p.DBLPAuthors {
			names.AddNode(a)
			_ = names.AddEdge(a, "author")
		}
	}
	for _, mode := range []struct {
		variant string
		disable bool
	}{{"lemma1", false}, {"full-pairs", true}} {
		disable := mode.disable
		if err := timeIt("lemma1", mode.variant, func() error {
			_, err := seo.Enhance(names, similarity.Levenshtein{}, 2,
				seo.Options{CompatibilityFilter: true, DisableLemma1: disable})
			return err
		}); err != nil {
			return nil, err
		}
	}

	// 4. Reachability index vs per-query DFS.
	h := withSEO.Ontology().FusedIsa.Hierarchy
	nodes := h.Nodes()
	h.BuildReachability()
	if err := timeIt("reachability", "indexed", func() error {
		for j := 0; j < len(nodes); j += 3 {
			h.Leq(nodes[j], "conference")
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := timeIt("reachability", "dfs", func() error {
		for j := 0; j < len(nodes); j += 3 {
			h.LeqNoIndex(nodes[j], "conference")
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rep, nil
}

// String renders the ablation table.
func (r *AblationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (papers=%d, eps=%g, avg of %d runs)\n",
		r.Config.Papers, r.Config.Epsilon, r.Config.Repetitions)
	fmt.Fprintf(&b, "%-16s %-14s %12s\n", "study", "variant", "time")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-14s %12s\n", row.Study, row.Variant, fmtDur(row.Elapsed))
	}
	return b.String()
}
