package experiments

import (
	"bytes"
	"encoding/csv"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

// TestQualityShape runs a reduced Figure 15 experiment and asserts the
// paper's qualitative findings: TAX precision is always 1; TOSS recall
// dominates TAX recall; recall grows with ε; precision does not grow with ε;
// TOSS quality beats TAX quality on average.
func TestQualityShape(t *testing.T) {
	cfg := DefaultQualityConfig()
	cfg.Datasets = 2
	rep, err := RunQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != cfg.Datasets*cfg.QueriesPerDataset {
		t.Fatalf("outcomes = %d", len(rep.Outcomes))
	}
	for i, o := range rep.Outcomes {
		if o.TAX.Precision() != 1 {
			t.Errorf("q%d: TAX precision %.3f != 1 (exact match must be correct)", i, o.TAX.Precision())
		}
		if o.TruthSize == 0 {
			t.Errorf("q%d: empty ground truth", i)
		}
		r2 := o.TOSS[2]
		r3 := o.TOSS[3]
		if r2.Recall() < o.TAX.Recall()-1e-9 {
			t.Errorf("q%d: TOSS(2) recall %.3f below TAX %.3f", i, r2.Recall(), o.TAX.Recall())
		}
		if r3.Recall() < r2.Recall()-1e-9 {
			t.Errorf("q%d: recall should not shrink with eps (%.3f vs %.3f)", i, r3.Recall(), r2.Recall())
		}
	}
	taxP, taxR, toss := rep.Averages()
	if taxP != 1 {
		t.Errorf("avg TAX precision = %.3f", taxP)
	}
	if taxR >= toss[3][1] {
		t.Errorf("avg TAX recall %.3f should trail TOSS(3) recall %.3f", taxR, toss[3][1])
	}
	if toss[3][0] > toss[2][0]+1e-9 {
		t.Errorf("precision should not grow with eps: P(3)=%.3f P(2)=%.3f", toss[3][0], toss[2][0])
	}
	// Average quality: TOSS(3) beats TAX (the paper's headline).
	var qTax, qToss float64
	for _, o := range rep.Outcomes {
		qTax += o.TAX.Quality()
		qToss += o.TOSS[3].Quality()
	}
	if qToss <= qTax {
		t.Errorf("TOSS(3) avg quality %.3f should beat TAX %.3f", qToss, qTax)
	}
	// Reports render with all panels.
	out := rep.String()
	for _, want := range []string{"Figure 15(a)", "Figure 15(b)", "Figure 15(c)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %s", want)
		}
	}
}

// TestSelectionScalabilityShape runs a reduced Figure 16(a) and checks that
// times grow with data size and that the TOSS curves sit above TAX.
func TestSelectionScalabilityShape(t *testing.T) {
	cfg := DefaultSelectionScalabilityConfig()
	cfg.PaperCounts = []int{100, 400}
	cfg.Repetitions = 2
	rep, err := RunSelectionScalability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TAX) != 2 || len(rep.TOSS) != len(cfg.OntologySizes) {
		t.Fatalf("series malformed")
	}
	// Bytes grow with papers; every timing is positive.
	if rep.TAX[1].Bytes <= rep.TAX[0].Bytes {
		t.Error("bytes should grow with paper count")
	}
	for _, pt := range rep.TAX {
		if pt.Elapsed <= 0 {
			t.Error("TAX timing missing")
		}
	}
	for i := range rep.TOSS {
		for row, pt := range rep.TOSS[i] {
			if pt.Elapsed <= 0 {
				t.Error("TOSS timing missing")
			}
			if pt.OntoTerms <= 0 {
				t.Error("ontology size missing")
			}
			if pt.Bytes != rep.TAX[row].Bytes {
				t.Error("curves should share the x axis")
			}
		}
	}
	// Larger data takes longer for the biggest-ontology TOSS curve.
	last := rep.TOSS[len(rep.TOSS)-1]
	if last[1].Elapsed <= last[0].Elapsed/4 {
		t.Errorf("TOSS time did not grow with size: %v then %v", last[0].Elapsed, last[1].Elapsed)
	}
	if !strings.Contains(rep.String(), "Figure 16(a)") {
		t.Error("report header missing")
	}
}

// TestJoinScalabilityShape runs a reduced Figure 16(b).
func TestJoinScalabilityShape(t *testing.T) {
	cfg := DefaultJoinScalabilityConfig()
	cfg.PaperCounts = []int{50, 150}
	rep, err := RunJoinScalability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TAX) != 2 || len(rep.Results) != 2 {
		t.Fatalf("series malformed")
	}
	// The join must actually produce matches (each SIGMOD paper appears in
	// DBLP too), and more data ⇒ more matches.
	if rep.Results[0] == 0 || rep.Results[1] <= rep.Results[0] {
		t.Errorf("join results = %v", rep.Results)
	}
	// TOSS joins cost at least as much as TAX joins at the same size
	// (similarity checks on top of the same algebra).
	for row := range rep.TAX {
		toss := rep.TOSS[len(rep.TOSS)-1][row].Elapsed
		if toss < rep.TAX[row].Elapsed/2 {
			t.Errorf("row %d: TOSS %v suspiciously cheaper than TAX %v", row, toss, rep.TAX[row].Elapsed)
		}
	}
	if !strings.Contains(rep.String(), "Figure 16(b)") {
		t.Error("report header missing")
	}
}

// TestEpsilonShape runs a reduced Figure 16(c): SEO size shrinks (or stays)
// as clusters merge with growing ε, and timings are recorded per ε.
func TestEpsilonShape(t *testing.T) {
	cfg := DefaultEpsilonConfig()
	cfg.Epsilons = []float64{0, 3}
	cfg.SelectPapers = 150
	cfg.JoinPapers = 80
	cfg.Repetitions = 1
	rep, err := RunEpsilon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	p0, p3 := rep.Points[0], rep.Points[1]
	if p0.SelectTime <= 0 || p0.JoinTime <= 0 || p3.SelectTime <= 0 || p3.JoinTime <= 0 {
		t.Error("timings missing")
	}
	// At ε=0 every term is its own cluster; at ε=3 clusters merge.
	if p3.SEONodes > p0.SEONodes {
		t.Errorf("SEO nodes grew with eps: %d -> %d", p0.SEONodes, p3.SEONodes)
	}
	if p0.OntoTerms != p3.OntoTerms {
		t.Error("ontology size should not depend on eps")
	}
	if !strings.Contains(rep.String(), "Figure 16(c)") {
		t.Error("report header missing")
	}
}

// TestPaperIDsExtraction covers the answer-scoring helper.
func TestPaperIDsExtraction(t *testing.T) {
	s, corpus := mustMini(t)
	_ = corpus
	docs, err := s.Trees("dblp")
	if err != nil {
		t.Fatal(err)
	}
	ids := PaperIDs(docs)
	if len(ids) == 0 {
		t.Fatal("no IDs extracted")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate ID %s", id)
		}
		seen[id] = true
	}
}

// mustMini builds a small system for helper tests.
func mustMini(t *testing.T) (*core.System, *datagen.Corpus) {
	t.Helper()
	c := datagen.Generate(datagen.DefaultConfig(60))
	s, err := buildSystem(c, buildOptions{epsilon: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

// TestAblationsShape runs the reduced ablation suite and checks the expected
// winners: indexed XPath beats scans and the reachability index beats DFS.
func TestAblationsShape(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Papers = 200
	cfg.Repetitions = 3
	rep, err := RunAblations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]int64{}
	for _, row := range rep.Rows {
		byKey[row.Study+"/"+row.Variant] = row.Elapsed.Nanoseconds()
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if byKey["xpath-index/indexed"] >= byKey["xpath-index/scan"] {
		t.Errorf("indexed XPath (%d ns) should beat scan (%d ns)",
			byKey["xpath-index/indexed"], byKey["xpath-index/scan"])
	}
	if byKey["reachability/indexed"] >= byKey["reachability/dfs"] {
		t.Errorf("reachability index (%d ns) should beat DFS (%d ns)",
			byKey["reachability/indexed"], byKey["reachability/dfs"])
	}
	if !strings.Contains(rep.String(), "Ablations") {
		t.Error("report header missing")
	}
}

// TestCSVExport sanity-checks each report's CSV writer: right header arity,
// one row per data point, parseable with encoding/csv.
func TestCSVExport(t *testing.T) {
	qcfg := DefaultQualityConfig()
	qcfg.Datasets = 1
	qrep, err := RunQuality(qcfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "fig15", qrep.WriteCSV, len(qrep.Outcomes)+1)

	scfg := DefaultSelectionScalabilityConfig()
	scfg.PaperCounts = []int{80}
	scfg.Repetitions = 1
	srep, err := RunSelectionScalability(scfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "fig16a", srep.WriteCSV, 2)

	jcfg := DefaultJoinScalabilityConfig()
	jcfg.PaperCounts = []int{40}
	jrep, err := RunJoinScalability(jcfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "fig16b", jrep.WriteCSV, 2)

	ecfg := DefaultEpsilonConfig()
	ecfg.Epsilons = []float64{0, 2}
	ecfg.SelectPapers = 60
	ecfg.JoinPapers = 40
	ecfg.Repetitions = 1
	erep, err := RunEpsilon(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "fig16c", erep.WriteCSV, 3)
}

func checkCSV(t *testing.T, name string, emit func(io.Writer) error, wantRows int) {
	t.Helper()
	var buf bytes.Buffer
	if err := emit(&buf); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("%s: output is not valid CSV: %v", name, err)
	}
	if len(records) != wantRows {
		t.Errorf("%s: %d rows, want %d", name, len(records), wantRows)
	}
	for i, rec := range records {
		if len(rec) != len(records[0]) {
			t.Errorf("%s: row %d arity %d != header %d", name, i, len(rec), len(records[0]))
		}
	}
}

// TestScalabilitySelectivityColumns: the scalability reports carry pre-filter
// selectivity per point, and the CSV exports expose it as per-curve columns.
func TestScalabilitySelectivityColumns(t *testing.T) {
	scfg := DefaultSelectionScalabilityConfig()
	scfg.PaperCounts = []int{80}
	scfg.Repetitions = 1
	srep, err := RunSelectionScalability(scfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range srep.TOSS {
		for _, pt := range srep.TOSS[i] {
			if pt.Total <= 0 || pt.Candidates < 0 || pt.Candidates > pt.Total {
				t.Errorf("selection candidates = %d of %d", pt.Candidates, pt.Total)
			}
			if pt.Selectivity < 0 || pt.Selectivity > 1 {
				t.Errorf("selection selectivity = %f", pt.Selectivity)
			}
		}
	}
	for _, pt := range srep.TAX {
		if pt.Selectivity != 1 || pt.Candidates != pt.Total {
			t.Errorf("TAX baseline must have selectivity 1, got %+v", pt)
		}
	}
	var buf bytes.Buffer
	if err := srep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	selCols := 0
	for _, col := range records[0] {
		if strings.HasSuffix(col, "_selectivity") {
			selCols++
		}
	}
	if selCols != len(srep.TOSS) {
		t.Errorf("fig16a header has %d selectivity columns, want %d: %v", selCols, len(srep.TOSS), records[0])
	}

	jcfg := DefaultJoinScalabilityConfig()
	jcfg.PaperCounts = []int{40}
	jrep, err := RunJoinScalability(jcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jrep.TOSS {
		for _, pt := range jrep.TOSS[i] {
			if pt.Selectivity <= 0 || pt.Selectivity > 1 {
				t.Errorf("join pair selectivity = %f", pt.Selectivity)
			}
			if pt.Candidates > pt.Total {
				t.Errorf("join pairs tried %d > cross product %d", pt.Candidates, pt.Total)
			}
		}
	}
	buf.Reset()
	if err := jrep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	jrecords, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	jSelCols := 0
	for _, col := range jrecords[0] {
		if strings.HasSuffix(col, "_pair_selectivity") {
			jSelCols++
		}
	}
	if jSelCols != len(jrep.TOSS) {
		t.Errorf("fig16b header has %d pair-selectivity columns, want %d: %v", jSelCols, len(jrep.TOSS), jrecords[0])
	}
}
