package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/tax"
	"repro/internal/tree"
	"repro/internal/wordnet"
)

// QualityConfig parameterises the Figure 15 experiment: selection queries,
// each with 1 isa + 1 similarTo + 3 tag matching conditions, evaluated
// against ground truth on datasets of random papers, comparing TAX
// (contains/exact) with TOSS at several ε.
type QualityConfig struct {
	Datasets          int
	PapersPerDataset  int
	QueriesPerDataset int
	Epsilons          []float64
	Seed              int64
}

// DefaultQualityConfig reproduces the paper's setup: 12 queries over 3
// datasets of 100 random papers; TOSS at ε = 2 and ε = 3.
func DefaultQualityConfig() QualityConfig {
	return QualityConfig{
		Datasets:          3,
		PapersPerDataset:  100,
		QueriesPerDataset: 4,
		Epsilons:          []float64{2, 3},
		Seed:              7,
	}
}

// QueryOutcome is the scored result of one query on one dataset. Queries
// come in two families, both with 1 isa + 1 similarTo + 3 tag conditions as
// in the paper: author-centric queries (similarTo on the author name, broad
// isa on the venue) and concept-centric queries (similarTo on the venue,
// isa on title words).
type QueryOutcome struct {
	Dataset   int
	Label     string // human-readable query description
	TruthSize int
	TAX       metrics.Result
	TOSS      map[float64]metrics.Result

	pat   *pattern.Tree
	truth map[string]bool
}

// QualityReport aggregates the Figure 15 experiment.
type QualityReport struct {
	Config   QualityConfig
	Outcomes []QueryOutcome
}

// authorQuery: 3 tag conditions + similarTo on the author + a broad isa on
// the venue ("every booktitle value is a conference"), so the author
// dimension determines the truth set. TAX degrades ~ to exact match and isa
// to contains, so it only finds papers whose author string is the literal
// and whose venue literally contains "conference".
func authorQuery(author string) *pattern.Tree {
	return pattern.MustParse(fmt.Sprintf(
		`#1 pc #2, #1 pc #4 :: #1.tag = "inproceedings" & #2.tag = "author" & #4.tag = "booktitle" & `+
			`#2.content ~ %q & #4.content isa "conference"`, author))
}

// conceptQuery: 3 tag conditions + similarTo on the venue + isa on title
// words; the concept and venue dimensions jointly determine the truth set.
func conceptQuery(venue, concept string) *pattern.Tree {
	return pattern.MustParse(fmt.Sprintf(
		`#1 pc #3, #1 pc #4 :: #1.tag = "inproceedings" & #3.tag = "title" & #4.tag = "booktitle" & `+
			`#4.content ~ %q & #3.content isa %q`, venue, concept))
}

var qualityConcepts = []string{
	"index", "access method", "database", "operation",
	"query", "data model", "view", "transaction",
}

// pickQueries chooses n queries per dataset, half author-centric and half
// concept-centric, with a deterministic spread of truth sizes.
func pickQueries(corpus *datagen.Corpus, lex *wordnet.Lexicon, n int) []QueryOutcome {
	var out []QueryOutcome
	nAuthor := (n + 1) / 2

	// Author-centric: spread over paper counts (largest, then evenly down).
	type ac struct {
		a     *datagen.Author
		truth map[string]bool
	}
	var authors []ac
	for _, a := range corpus.Authors {
		t := corpus.PapersByAuthor(a.ID)
		if len(t) > 0 {
			authors = append(authors, ac{a, t})
		}
	}
	sort.Slice(authors, func(i, j int) bool {
		if len(authors[i].truth) != len(authors[j].truth) {
			return len(authors[i].truth) > len(authors[j].truth)
		}
		return authors[i].a.ID < authors[j].a.ID
	})
	step := 1
	if len(authors) > nAuthor && nAuthor > 0 {
		step = len(authors) / nAuthor
	}
	for i := 0; i < len(authors) && len(out) < nAuthor; i += step {
		name := authors[i].a.Canonical()
		out = append(out, QueryOutcome{
			Label:     "author ~ " + name,
			TruthSize: len(authors[i].truth),
			TOSS:      map[float64]metrics.Result{},
			pat:       authorQuery(name),
			truth:     authors[i].truth,
		})
	}

	// Concept-centric: (venue, concept) pairs with non-empty truth, spread
	// over sizes.
	type cc struct {
		venue   string
		concept string
		truth   map[string]bool
	}
	var cands []cc
	for _, conf := range corpus.Conferences {
		byVenue := corpus.PapersByConference(conf.ID)
		for _, concept := range qualityConcepts {
			truth := datagen.Intersect(byVenue, conceptTruth(corpus, lex, concept))
			if len(truth) > 0 {
				cands = append(cands, cc{conf.Short, concept, truth})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i].truth) != len(cands[j].truth) {
			return len(cands[i].truth) > len(cands[j].truth)
		}
		if cands[i].venue != cands[j].venue {
			return cands[i].venue < cands[j].venue
		}
		return cands[i].concept < cands[j].concept
	})
	nConcept := n - len(out)
	step = 1
	if len(cands) > nConcept && nConcept > 0 {
		step = len(cands) / nConcept
	}
	for i := 0; i < len(cands) && len(out) < n; i += step {
		c := cands[i]
		out = append(out, QueryOutcome{
			Label:     fmt.Sprintf("venue ~ %s & title isa %s", c.venue, c.concept),
			TruthSize: len(c.truth),
			TOSS:      map[float64]metrics.Result{},
			pat:       conceptQuery(c.venue, c.concept),
			truth:     c.truth,
		})
	}
	return out
}

// conceptTruth returns papers whose title contains a word that isa concept,
// per the lexicon (the ground truth a human labeller would produce).
func conceptTruth(corpus *datagen.Corpus, lex *wordnet.Lexicon, concept string) map[string]bool {
	return corpus.PapersByTitleWord(func(w string) bool { return lex.IsA(w, concept) })
}

// RunQuality executes the Figure 15 experiment.
func RunQuality(cfg QualityConfig) (*QualityReport, error) {
	lex := wordnet.Default()
	report := &QualityReport{Config: cfg}
	for ds := 0; ds < cfg.Datasets; ds++ {
		gen := datagen.DefaultConfig(cfg.PapersPerDataset)
		gen.Seed = cfg.Seed + int64(ds)
		// A small author pool with colliding surnames and heavy mention
		// noise: several papers per author (the paper's truth sets reach 38
		// papers), initialled mentions that collide across same-surname
		// entities (precision pressure at higher ε), and typo'd variant
		// forms beyond ε=2 (the recall gap between ε=2 and ε=3).
		gen.AuthorPool = 16
		gen.SurnamePool = 6
		gen.ConfPool = 3
		gen.VariantRate = 0.85
		gen.TypoRate = 0.15
		gen.MangleRate = 0.35
		corpus := datagen.Generate(gen)

		queries := pickQueries(corpus, lex, cfg.QueriesPerDataset)

		// One TOSS system per ε (the SEO depends on it); TAX runs over the
		// same documents with the baseline evaluator.
		systems := map[float64]*core.System{}
		for _, eps := range cfg.Epsilons {
			s, err := buildSystem(corpus, buildOptions{epsilon: eps})
			if err != nil {
				return nil, fmt.Errorf("dataset %d eps %g: %w", ds, eps, err)
			}
			systems[eps] = s
		}
		var taxDocs []*tree.Tree
		if len(cfg.Epsilons) > 0 {
			var err error
			taxDocs, err = systems[cfg.Epsilons[0]].Trees("dblp")
			if err != nil {
				return nil, err
			}
		}

		for qi := range queries {
			q := &queries[qi]
			q.Dataset = ds

			taxRes, err := tax.Select(tree.NewCollection(), taxDocs, q.pat, []int{1}, tax.Baseline{})
			if err != nil {
				return nil, fmt.Errorf("tax select: %w", err)
			}
			q.TAX = metrics.Score(PaperIDs(taxRes), q.truth)

			for _, eps := range cfg.Epsilons {
				res, err := systems[eps].Query(context.Background(), core.QueryRequest{Pattern: q.pat, Instance: "dblp", Adorn: []int{1}})
				if err != nil {
					return nil, fmt.Errorf("toss select eps %g: %w", eps, err)
				}
				q.TOSS[eps] = metrics.Score(PaperIDs(res.Answers), q.truth)
			}
			report.Outcomes = append(report.Outcomes, *q)
		}
	}
	return report, nil
}

// Averages returns mean precision and recall for TAX and each TOSS ε.
func (r *QualityReport) Averages() (taxP, taxR float64, toss map[float64][2]float64) {
	toss = map[float64][2]float64{}
	n := float64(len(r.Outcomes))
	if n == 0 {
		return 0, 0, toss
	}
	for _, o := range r.Outcomes {
		taxP += o.TAX.Precision()
		taxR += o.TAX.Recall()
		for eps, res := range o.TOSS {
			v := toss[eps]
			v[0] += res.Precision()
			v[1] += res.Recall()
			toss[eps] = v
		}
	}
	taxP /= n
	taxR /= n
	for eps, v := range toss {
		toss[eps] = [2]float64{v[0] / n, v[1] / n}
	}
	return taxP, taxR, toss
}

// epsList returns the configured epsilons in ascending order.
func (r *QualityReport) epsList() []float64 {
	eps := append([]float64{}, r.Config.Epsilons...)
	sort.Float64s(eps)
	return eps
}

// Fig15a renders the per-query precision/recall table.
func (r *QualityReport) Fig15a() string {
	var b strings.Builder
	eps := r.epsList()
	fmt.Fprintf(&b, "Figure 15(a): precision & recall per query (TAX vs TOSS)\n")
	fmt.Fprintf(&b, "%-3s %-42s %5s  %7s %7s", "q", "query", "truth", "TAX-P", "TAX-R")
	for _, e := range eps {
		fmt.Fprintf(&b, "  P(e=%g) R(e=%g)", e, e)
	}
	b.WriteString("\n")
	for i, o := range r.Outcomes {
		fmt.Fprintf(&b, "%-3d %-42s %5d  %7.3f %7.3f", i+1, o.Label, o.TruthSize,
			o.TAX.Precision(), o.TAX.Recall())
		for _, e := range eps {
			fmt.Fprintf(&b, "  %6.3f  %6.3f", o.TOSS[e].Precision(), o.TOSS[e].Recall())
		}
		b.WriteString("\n")
	}
	taxP, taxR, toss := r.Averages()
	fmt.Fprintf(&b, "%-3s %-42s %5s  %7.3f %7.3f", "avg", "", "", taxP, taxR)
	for _, e := range eps {
		fmt.Fprintf(&b, "  %6.3f  %6.3f", toss[e][0], toss[e][1])
	}
	b.WriteString("\n")
	return b.String()
}

// Fig15b renders quality √(P·R) against √(TAX recall) per query.
func (r *QualityReport) Fig15b() string {
	var b strings.Builder
	eps := r.epsList()
	fmt.Fprintf(&b, "Figure 15(b): quality sqrt(P*R) vs sqrt(TAX recall)\n")
	fmt.Fprintf(&b, "%-3s %12s %12s", "q", "sqrt(TAX-R)", "TAX-quality")
	for _, e := range eps {
		fmt.Fprintf(&b, "  q(e=%g)", e)
	}
	b.WriteString("\n")
	for i, o := range r.Outcomes {
		fmt.Fprintf(&b, "%-3d %12.3f %12.3f", i+1, math.Sqrt(o.TAX.Recall()), o.TAX.Quality())
		for _, e := range eps {
			fmt.Fprintf(&b, "  %6.3f", o.TOSS[e].Quality())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig15c renders the recall improvement of TOSS over TAX, normalised by the
// TOSS precision: (R_toss / R_tax) · P_toss. When TAX recall is zero the
// ratio is computed against the smallest non-zero recall 1/truth.
func (r *QualityReport) Fig15c() string {
	var b strings.Builder
	eps := r.epsList()
	fmt.Fprintf(&b, "Figure 15(c): normalised recall improvement over TAX\n")
	fmt.Fprintf(&b, "%-3s %7s", "q", "TAX-R")
	for _, e := range eps {
		fmt.Fprintf(&b, "  imp(e=%g)", e)
	}
	b.WriteString("\n")
	for i, o := range r.Outcomes {
		base := o.TAX.Recall()
		if base == 0 && o.TruthSize > 0 {
			base = 1 / float64(o.TruthSize)
		}
		fmt.Fprintf(&b, "%-3d %7.3f", i+1, o.TAX.Recall())
		for _, e := range eps {
			imp := 0.0
			if base > 0 {
				imp = o.TOSS[e].Recall() / base * o.TOSS[e].Precision()
			}
			fmt.Fprintf(&b, "  %8.2f", imp)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// String renders all three panels.
func (r *QualityReport) String() string {
	return r.Fig15a() + "\n" + r.Fig15b() + "\n" + r.Fig15c()
}
