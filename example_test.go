package toss_test

import (
	"fmt"
	"strings"

	toss "repro"
)

// The package-level workflow: load, build, query. The similarity condition
// reaches all three spellings of the author even though only one matches
// exactly.
func Example() {
	const xml = `<dblp>
	  <inproceedings key="u1"><author>Jeffrey D. Ullman</author><year>1997</year></inproceedings>
	  <inproceedings key="u2"><author>J. Ullman</author><year>1999</year></inproceedings>
	  <inproceedings key="u3"><author>Jeff Ullman</author><year>2001</year></inproceedings>
	  <inproceedings key="x1"><author>Paolo Ciancarini</author><year>1999</year></inproceedings>
	</dblp>`

	sys := toss.New()
	inst, err := sys.AddInstance("dblp")
	if err != nil {
		panic(err)
	}
	if _, err := inst.Col.PutXML("dblp.xml", strings.NewReader(xml)); err != nil {
		panic(err)
	}
	if err := sys.Build(toss.MeasureByName("name-rule"), 3); err != nil {
		panic(err)
	}

	p := toss.MustParsePattern(`#1 pc #2 :: #1.tag = "inproceedings" & ` +
		`#2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	answers, err := sys.Select("dblp", p, []int{1})
	if err != nil {
		panic(err)
	}
	for _, t := range answers {
		fmt.Println(t.Root.ChildContent("author"))
	}
	// Output:
	// Jeffrey D. Ullman
	// J. Ullman
	// Jeff Ullman
}

// Ranked selection grades the same answers by similarity distance.
func ExampleSystem_ranked() {
	const xml = `<dblp>
	  <inproceedings key="u1"><author>Jeffrey D. Ullman</author></inproceedings>
	  <inproceedings key="u2"><author>J. Ullman</author></inproceedings>
	</dblp>`
	sys := toss.New()
	inst, _ := sys.AddInstance("dblp")
	if _, err := inst.Col.PutXML("d", strings.NewReader(xml)); err != nil {
		panic(err)
	}
	if err := sys.Build(toss.MeasureByName("name-rule"), 3); err != nil {
		panic(err)
	}
	p := toss.MustParsePattern(`#1 pc #2 :: #1.tag = "inproceedings" & ` +
		`#2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	ranked, err := sys.SelectRanked("dblp", p, []int{1})
	if err != nil {
		panic(err)
	}
	for _, r := range ranked {
		fmt.Printf("%.0f %s\n", r.Score, r.Tree.Root.ChildContent("author"))
	}
	// Output:
	// 0 Jeffrey D. Ullman
	// 2 J. Ullman
}
