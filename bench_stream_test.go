package toss

// Limit-pushdown benchmarks: the same unselective limit-10 query over a
// large generated collection, executed through the streaming scan (limit
// pushed into the shard cursors, scan stops after the limit-th answer)
// versus the materialize-then-truncate plan (pre-filter and evaluate the
// whole collection, keep the first 10). The answers are identical — the
// streamed result is a prefix of the materialized one by construction — so
// the whole difference is how many documents each plan touches.
//
//	go test -run NONE -bench 'BenchmarkStreamLimit' -count 10 | benchstat -
//	go test -run TestWriteBenchStreamJSON -v

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
)

const (
	streamBenchPapers = 600
	streamBenchShards = 4
	streamBenchLimit  = 10
)

func benchmarkStreamLimit(b *testing.B, pushdown bool) {
	s, _ := shardBenchSystem(b, streamBenchPapers, streamBenchShards)
	pat := shardBenchPattern()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := core.QueryRequest{Pattern: pat, Instance: "dblp", Adorn: []int{1}}
		if pushdown {
			req.Limit = streamBenchLimit
		}
		res, err := s.Query(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		answers := res.Answers
		if !pushdown && len(answers) > streamBenchLimit {
			answers = answers[:streamBenchLimit]
		}
		if len(answers) != streamBenchLimit {
			b.Fatalf("%d answers, want %d", len(answers), streamBenchLimit)
		}
	}
}

func BenchmarkStreamLimit(b *testing.B) {
	b.Run("mode=streamed", func(b *testing.B) { benchmarkStreamLimit(b, true) })
	b.Run("mode=materialized", func(b *testing.B) { benchmarkStreamLimit(b, false) })
}

// TestWriteBenchStreamJSON measures what limit pushdown buys and records it
// in BENCH_stream.json: documents scanned and ns/op + allocs for the
// streamed limit-10 plan against the materialize-everything baseline on the
// same corpus. CI asserts the reduction so a regression that silently turns
// the streaming scan back into a full materialization fails the build.
func TestWriteBenchStreamJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	s, _ := shardBenchSystem(t, streamBenchPapers, streamBenchShards)
	pat := shardBenchPattern()
	ctx := context.Background()

	// Traced runs give the docs-touched counts for both plans.
	streamRes, err := s.Query(ctx, core.QueryRequest{
		Pattern: pat, Instance: "dblp", Adorn: []int{1}, Limit: streamBenchLimit, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamRes.Stats.ScanMode != core.ScanModeStream {
		t.Fatalf("limit-%d query did not engage the streaming scan (mode %q)",
			streamBenchLimit, streamRes.Stats.ScanMode)
	}
	matRes, err := s.Query(ctx, core.QueryRequest{
		Pattern: pat, Instance: "dblp", Adorn: []int{1}, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	type entry struct {
		NsPerOp     int64 `json:"ns_per_op"`
		AllocsOp    int64 `json:"allocs_per_op"`
		N           int   `json:"n"`
		DocsScanned int   `json:"docs_scanned"`
	}
	rs := testing.Benchmark(func(b *testing.B) { benchmarkStreamLimit(b, true) })
	rm := testing.Benchmark(func(b *testing.B) { benchmarkStreamLimit(b, false) })
	report := struct {
		Papers       int     `json:"papers"`
		Shards       int     `json:"shards"`
		Limit        int     `json:"limit"`
		TotalDocs    int     `json:"total_docs"`
		Streamed     entry   `json:"streamed"`
		Materialized entry   `json:"materialized"`
		ScanReduct   float64 `json:"docs_scanned_reduction"`
		Speedup      float64 `json:"speedup"`
		AllocReduct  float64 `json:"allocs_reduction"`
	}{
		Papers:    streamBenchPapers,
		Shards:    streamBenchShards,
		Limit:     streamBenchLimit,
		TotalDocs: streamRes.Stats.TotalDocs,
		Streamed: entry{
			NsPerOp: rs.NsPerOp(), AllocsOp: rs.AllocsPerOp(), N: rs.N,
			DocsScanned: streamRes.Stats.DocsScanned,
		},
		Materialized: entry{
			NsPerOp: rm.NsPerOp(), AllocsOp: rm.AllocsPerOp(), N: rm.N,
			DocsScanned: matRes.Stats.DocsEvaluated,
		},
	}
	if report.Streamed.DocsScanned > 0 {
		report.ScanReduct = float64(report.Materialized.DocsScanned) / float64(report.Streamed.DocsScanned)
	}
	if rs.NsPerOp() > 0 {
		report.Speedup = float64(rm.NsPerOp()) / float64(rs.NsPerOp())
	}
	if rs.AllocsPerOp() > 0 {
		report.AllocReduct = float64(rm.AllocsPerOp()) / float64(rs.AllocsPerOp())
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_stream.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("limit-%d: streamed scans %d of %d docs, materialized evaluates %d (%.1fx fewer), speedup %.2fx, allocs %.2fx",
		streamBenchLimit, report.Streamed.DocsScanned, report.TotalDocs,
		report.Materialized.DocsScanned, report.ScanReduct, report.Speedup, report.AllocReduct)
	if report.Streamed.DocsScanned >= report.Materialized.DocsScanned {
		t.Errorf("streaming scan touched %d docs, materialized %d: limit pushdown bought nothing",
			report.Streamed.DocsScanned, report.Materialized.DocsScanned)
	}
}
