package toss

// Planner ablation benchmarks (benchstat-friendly): the same queries on the
// same skewed corpus, once with the cost-based planner (default) and once
// with it disabled (the pre-planner heuristics: rewrite-order intersections,
// always-index routing, key-both-sides hash join). Answer sets are identical
// by construction (see internal/core/planner_prop_test.go); only the work
// differs. TestWriteBenchPlannerJSON re-runs the comparison with
// testing.Benchmark and writes BENCH_planner.json.
//
//	go test -run NONE -bench 'BenchmarkPlanner' -count 10 | benchstat -

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/pattern"
	"repro/internal/tax"
)

// plannerBenchSystem builds a corpus with document-level skew: one paper per
// document, so a selective author condition isolates a handful of documents
// out of many, and intersection order matters.
func plannerBenchSystem(b testing.TB, papers int) (*core.System, *datagen.Corpus) {
	b.Helper()
	gen := datagen.DefaultConfig(papers)
	gen.Seed = 11
	corpus := datagen.Generate(gen)
	s := core.NewSystem()
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		b.Fatal(err)
	}
	dblp.Col.SetMaxBytes(0)
	for i, p := range corpus.Papers {
		key := fmt.Sprintf("dblp-%05d", i)
		if _, err := dblp.Col.PutXML(key, strings.NewReader(corpus.DBLPString(corpus.Papers[i:i+1]))); err != nil {
			b.Fatal(err)
		}
		_ = p
	}
	if err := s.Build(experiments.DefaultMeasure(), 3); err != nil {
		b.Fatal(err)
	}
	return s, corpus
}

// plannerBenchPattern puts the unselective conditions first in rewrite
// order (the root and a contains-constrained title, which rewrites to a
// bare //inproceedings/title path matching every document) and the highly
// selective author equality last — exactly the shape where the heuristic
// rewrite-order intersection does maximal wasted work and the planner's
// most-selective-first order plus restricted survivor scans pay off.
func plannerBenchPattern(author string) *pattern.Tree {
	return pattern.MustParse(fmt.Sprintf(
		`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "title" & #3.tag = "author" & #2.content contains "a" & #3.content = %q`,
		author))
}

func benchmarkPlannerSelect(b *testing.B, planned bool) {
	s, corpus := plannerBenchSystem(b, 600)
	if !planned {
		s.Planner = nil
	}
	pat := plannerBenchPattern(corpus.Authors[0].Canonical())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Select("dblp", pat, []int{1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerSelect(b *testing.B) {
	b.Run("planned", func(b *testing.B) { benchmarkPlannerSelect(b, true) })
	b.Run("heuristic", func(b *testing.B) { benchmarkPlannerSelect(b, false) })
}

func joinBenchSystem(b testing.TB, papers int) (*core.System, *pattern.Tree) {
	s, corpus := plannerBenchSystem(b, papers)
	proc, err := s.AddInstance("proc")
	if err != nil {
		b.Fatal(err)
	}
	proc.Col.SetMaxBytes(0)
	// A small second side: the planner builds the hash table here and
	// streams the large side through it.
	for i := 0; i < papers/20; i++ {
		title := corpus.Papers[(i*7)%len(corpus.Papers)].Title
		xml := fmt.Sprintf(`<ProceedingsPage><title>%s</title><note>N%d</note></ProceedingsPage>`, title, i)
		if _, err := proc.Col.PutXML(fmt.Sprintf("pp-%04d", i), strings.NewReader(xml)); err != nil {
			b.Fatal(err)
		}
	}
	s.DynamicSimilarity = false // hash join needs complete cluster keys
	if err := s.Build(experiments.DefaultMeasure(), 3); err != nil {
		b.Fatal(err)
	}
	pat := pattern.MustParse(fmt.Sprintf(
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: #1.tag = %q & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & #4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`,
		tax.ProdRootTag))
	return s, pat
}

func benchmarkPlannerJoin(b *testing.B, planned bool) {
	s, pat := joinBenchSystem(b, 240)
	if !planned {
		s.Planner = nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Join("dblp", "proc", pat, []int{2, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerJoin(b *testing.B) {
	b.Run("planned", func(b *testing.B) { benchmarkPlannerJoin(b, true) })
	b.Run("heuristic", func(b *testing.B) { benchmarkPlannerJoin(b, false) })
}

// adaptiveDriftSystem builds the skewed-and-drifting workload the adaptive
// layer exists for: "Alice" appears in ~10% of documents and "2021" in ~50%,
// but never together. The independence assumption estimates ~150 candidate
// documents for the conjunction — dense enough that the static planner routes
// a limit-1 query through the streaming scan expecting a ~20-document prefix —
// and the scan walks the entire collection finding nothing, every time. The
// feedback loop learns the real cardinality on the first query and re-plans
// all later ones to the (empty, fast) index intersection; the static planner
// repeats the full scan forever.
func adaptiveDriftSystem(b testing.TB, docs int) *core.System {
	b.Helper()
	s := core.NewSystem()
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		b.Fatal(err)
	}
	dblp.Col.SetMaxBytes(0)
	// Each document carries a block of citation filler so the streaming
	// filter's per-document path walks cost real work; the value-index
	// intersection the corrected plan switches to never touches those nodes.
	var filler strings.Builder
	for j := 0; j < 60; j++ {
		fmt.Fprintf(&filler, `<cite ref="c%d">Reference %d</cite>`, j, j)
	}
	for i := 0; i < docs; i++ {
		author, year := "Bob", "2000"
		switch {
		case i%10 == 0:
			author, year = "Alice", "2020"
		case i%2 == 0:
			year = "2021"
		}
		doc := fmt.Sprintf(`<dblp><inproceedings key="p%d"><author>%s</author><year>%s</year>%s</inproceedings></dblp>`,
			i, author, year, filler.String())
		if _, err := dblp.Col.PutXML(fmt.Sprintf("d%05d", i), strings.NewReader(doc)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Build(experiments.DefaultMeasure(), 3); err != nil {
		b.Fatal(err)
	}
	return s
}

func adaptiveDriftPattern() *pattern.Tree {
	return pattern.MustParse(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & #2.content = "Alice" & #3.content = "2021"`)
}

func benchmarkAdaptiveDrift(b *testing.B, adaptive bool) {
	s := adaptiveDriftSystem(b, 3000)
	if !adaptive {
		s.AdaptiveDisabled = true
	}
	pat := adaptiveDriftPattern()
	ctx := context.Background()
	// One warm-up query before the timer: both variants pay the lazy index
	// builds, and the adaptive variant learns the misestimate — the bench
	// measures the steady state of the workload, where the corrected plan
	// either exists (adaptive) or never will (static).
	if _, err := s.Query(ctx, core.QueryRequest{Pattern: pat, Instance: "dblp", Adorn: []int{1}, Limit: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Query(ctx, core.QueryRequest{Pattern: pat, Instance: "dblp", Adorn: []int{1}, Limit: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) != 0 {
			b.Fatal("drifted conjunction must match nothing")
		}
	}
}

func BenchmarkAdaptiveDrift(b *testing.B) {
	b.Run("adaptive", func(b *testing.B) { benchmarkAdaptiveDrift(b, true) })
	b.Run("static", func(b *testing.B) { benchmarkAdaptiveDrift(b, false) })
}

// TestWriteBenchPlannerJSON runs the planned-vs-heuristic comparison once
// and records it in BENCH_planner.json (ns/op per variant plus the ratio),
// so CI and later sessions can diff planner performance without re-running
// benchstat by hand.
func TestWriteBenchPlannerJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	type entry struct {
		NsPerOp       int64   `json:"ns_per_op"`
		AllocsOp      int64   `json:"allocs_per_op"`
		N             int     `json:"n"`
		Speedup       float64 `json:"speedup_vs_heuristic,omitempty"`
		SpeedupStatic float64 `json:"speedup_vs_static,omitempty"`
	}
	out := map[string]map[string]entry{}
	record := func(group string, run func(b *testing.B, planned bool)) {
		variants := map[string]entry{}
		var ns [2]int64
		for i, planned := range []bool{true, false} {
			r := testing.Benchmark(func(b *testing.B) { run(b, planned) })
			name := "planned"
			if !planned {
				name = "heuristic"
			}
			e := entry{NsPerOp: r.NsPerOp(), AllocsOp: r.AllocsPerOp(), N: r.N}
			ns[i] = r.NsPerOp()
			variants[name] = e
		}
		if ns[0] > 0 {
			e := variants["planned"]
			e.Speedup = float64(ns[1]) / float64(ns[0])
			variants["planned"] = e
		}
		out[group] = variants
	}
	record("select_skewed", benchmarkPlannerSelect)
	record("join_sides", benchmarkPlannerJoin)

	// Adaptive-versus-static on the drifting workload: the adaptive variant
	// learns the misestimate on its first query and re-plans; the static
	// variant repeats the full streaming scan on every query.
	{
		variants := map[string]entry{}
		var ns [2]int64
		for i, adaptive := range []bool{true, false} {
			r := testing.Benchmark(func(b *testing.B) { benchmarkAdaptiveDrift(b, adaptive) })
			name := "adaptive"
			if !adaptive {
				name = "static"
			}
			ns[i] = r.NsPerOp()
			variants[name] = entry{NsPerOp: r.NsPerOp(), AllocsOp: r.AllocsPerOp(), N: r.N}
		}
		if ns[0] > 0 {
			e := variants["adaptive"]
			e.SpeedupStatic = float64(ns[1]) / float64(ns[0])
			variants["adaptive"] = e
		}
		out["adaptive_drift"] = variants
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_planner.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	sel := out["select_skewed"]["planned"].Speedup
	drift := out["adaptive_drift"]["adaptive"].SpeedupStatic
	t.Logf("planner speedup: select_skewed %.2fx, join_sides %.2fx, adaptive_drift %.2fx",
		sel, out["join_sides"]["planned"].Speedup, drift)
	if sel < 1.0 {
		t.Logf("warning: planned selection slower than heuristic on this machine (%.2fx)", sel)
	}
	if drift < 1.3 {
		t.Logf("warning: adaptive drift speedup below the 1.3x target (%.2fx)", drift)
	}
}
