// Package toss is a from-scratch Go implementation of TOSS — the extension
// of the TAX tree algebra for XML databases with ontologies and similarity
// queries (Hung, Deng, Subrahmanian, SIGMOD 2004).
//
// A TOSS deployment is built in three steps mirroring the paper's
// architecture:
//
//  1. load XML instances into a System (each becomes a collection in the
//     embedded XML database);
//  2. Build the system: the Ontology Maker extracts per-instance isa and
//     part-of hierarchies (WordNet-lite lexicon + structural analysis +
//     DBA rules), derives interoperation constraints, fuses the hierarchies
//     canonically, and the Similarity Enhancer runs the SEA algorithm to
//     precompute the similarity enhanced ontology (SEO);
//  3. run TOSS-algebra queries (selection, projection, product, join, set
//     operations) whose conditions may use ~, isa, part_of, instance_of,
//     subtype_of, above and below alongside the classical comparisons.
//
// Quick start:
//
//	sys := toss.New()
//	inst, _ := sys.AddInstance("dblp")
//	inst.Col.PutXML("dblp-1", file)
//	_ = sys.Build(toss.MeasureByName("name-rule"), 3)
//	p := toss.MustParsePattern(`#1 pc #2 :: #1.tag = "inproceedings" &
//	    #2.tag = "author" & #2.content ~ "J. Ullman"`)
//	res, _ := sys.Query(ctx, toss.QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}})
//	answers := res.Answers
//
// The sub-packages under internal/ implement every substrate the paper
// depends on: the ordered tree data model, the TAX algebra baseline, the
// ontology fusion machinery, the SEA similarity enhancer, a library of
// string similarity measures, an XPath-subset engine and a Xindice-like XML
// collection store, plus the experiment harnesses that regenerate the
// paper's Figures 15 and 16.
package toss

import (
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/similarity"
	"repro/internal/tree"
)

// System is a TOSS deployment; see the package documentation.
type System = core.System

// Instance is an ontology extended semistructured instance registered with
// a System.
type Instance = core.Instance

// Pattern is a TAX/TOSS pattern tree.
type Pattern = pattern.Tree

// Tree is an ordered labelled data tree (a query answer or document).
type Tree = tree.Tree

// Measure is a string similarity measure usable as the SEA input.
type Measure = similarity.Measure

// New creates an empty TOSS system with the default type system and
// lexicon.
func New() *System { return core.NewSystem() }

// ParsePattern parses the textual pattern-tree syntax, e.g.
//
//	#1 pc #2, #1 ad #3 :: #1.tag = "inproceedings" & #3.content ~ "J. Ullman"
func ParsePattern(src string) (*Pattern, error) { return pattern.Parse(src) }

// MustParsePattern is ParsePattern but panics on error.
func MustParsePattern(src string) *Pattern { return pattern.MustParse(src) }

// MeasureByName returns a similarity measure by name: levenshtein, damerau,
// jaro, jaro-winkler, jaccard, cosine, monge-elkan, name-rule, soundex. Nil
// if unknown.
func MeasureByName(name string) Measure { return similarity.ByName(name) }

// MeasureNames lists the available similarity measures.
func MeasureNames() []string { return similarity.Names() }

// Expr is a composable TOSS algebra expression (selection, projection,
// product, join, set operations over instances and sub-expressions).
type Expr = core.Expr

// QueryRequest describes one TOSS query for System.Query — the unified
// entry point for selections, joins, ranked queries and EXPLAIN ANALYZE.
type QueryRequest = core.QueryRequest

// QueryResult is the uniform answer envelope returned by System.Query.
type QueryResult = core.QueryResult

// RankedAnswer is a similarity-scored query answer returned by System.Query
// with Ranked set.
type RankedAnswer = core.RankedAnswer

// DocStream is the pull iterator a Stream query returns in
// QueryResult.Stream: Next yields answers until io.EOF, and the consumer
// must Close it exactly once — see docs/EXECUTION.md.
type DocStream = core.DocStream

// ParseExpr parses the textual algebra-expression syntax, e.g.
//
//	select[#1 pc #2 :: #1.tag = "inproceedings" & #2.content ~ "J. Ullman"; 1](dblp)
//	union(select[...](dblp), select[...](sigmod))
func ParseExpr(src string) (Expr, error) { return core.ParseExpr(src) }

// MustParseExpr is ParseExpr but panics on error.
func MustParseExpr(src string) Expr { return core.MustParseExpr(src) }
